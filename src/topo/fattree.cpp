#include "intercom/topo/fattree.hpp"

#include "intercom/util/error.hpp"

namespace intercom {

namespace {
constexpr long kMaxHosts = 1L << 22;

void require_config(bool ok, const std::string& message) {
  if (!ok) throw ConfigError("fat-tree: " + message);
}
}  // namespace

FatTree::FatTree(int arity, int levels) : arity_(arity), levels_(levels) {
  require_config(arity >= 2, "arity must be at least 2");
  require_config(levels >= 1, "levels must be at least 1");
  long hosts = 1;
  pow_.assign(static_cast<std::size_t>(levels) + 1, 1);
  for (int l = 1; l <= levels; ++l) {
    hosts *= arity;
    require_config(hosts <= kMaxHosts, "host count exceeds 2^22");
    pow_[static_cast<std::size_t>(l)] = static_cast<int>(hosts);
  }
  hosts_ = static_cast<int>(hosts);
  // Channel layout: host up [0, H), host down [H, 2H), then per level
  // l = 1..L-1 an up block and a down block of H channels each (a^l switches
  // times m(l) = a^(L-l) parallel channels is a^L = H either way).
  up_base_.assign(static_cast<std::size_t>(levels), 0);
  down_base_.assign(static_cast<std::size_t>(levels), 0);
  int next = 2 * hosts_;
  for (int l = 1; l < levels; ++l) {
    up_base_[static_cast<std::size_t>(l)] = next;
    down_base_[static_cast<std::size_t>(l)] = next + hosts_;
    next += 2 * hosts_;
  }
}

void FatTree::check_node(int node) const {
  INTERCOM_REQUIRE(node >= 0 && node < hosts_, "node id out of range");
}

int FatTree::multiplicity(int level) const {
  INTERCOM_REQUIRE(level >= 1 && level < levels_, "level has no parent link");
  return pow_[static_cast<std::size_t>(levels_ - level)];
}

int FatTree::subtree_at(int host, int level) const {
  return host / pow_[static_cast<std::size_t>(levels_ - level)];
}

int FatTree::up_index(int level, int index, int slot) const {
  return up_base_[static_cast<std::size_t>(level)] +
         index * multiplicity(level) + slot;
}

int FatTree::down_index(int level, int index, int slot) const {
  return down_base_[static_cast<std::size_t>(level)] +
         index * multiplicity(level) + slot;
}

FatTree::LinkKind FatTree::link_kind(int link) const {
  INTERCOM_REQUIRE(link >= 0 && link < directed_link_count(),
                   "link index out of range");
  if (link < hosts_) return LinkKind::kHostUp;
  if (link < 2 * hosts_) return LinkKind::kHostDown;
  return (link - 2 * hosts_) % (2 * hosts_) < hosts_ ? LinkKind::kUp
                                                     : LinkKind::kDown;
}

std::vector<int> FatTree::route(int src, int dst) const {
  check_node(src);
  check_node(dst);
  std::vector<int> ids;
  if (src == dst) return ids;
  ids.push_back(src);  // host up
  // Deepest level whose subtrees still contain both endpoints: climb from
  // the leaves until the indices coincide (level 0, the root, always does).
  int lc = levels_ - 1;
  while (subtree_at(src, lc) != subtree_at(dst, lc)) --lc;
  // Up to the common ancestor, D-mod-k channel spreading on the fat links.
  for (int l = levels_ - 1; l > lc; --l) {
    ids.push_back(up_index(l, subtree_at(src, l), src % multiplicity(l)));
  }
  // Down to the destination leaf.
  for (int l = lc + 1; l <= levels_ - 1; ++l) {
    ids.push_back(down_index(l, subtree_at(dst, l), dst % multiplicity(l)));
  }
  ids.push_back(hosts_ + dst);  // host down
  return ids;
}

int FatTree::min_hops(int src, int dst) const {
  check_node(src);
  check_node(dst);
  if (src == dst) return 0;
  int lc = levels_ - 1;
  while (subtree_at(src, lc) != subtree_at(dst, lc)) --lc;
  return 2 + 2 * (levels_ - 1 - lc);
}

std::string FatTree::label() const {
  return "fattree" + std::to_string(arity_) + "L" + std::to_string(levels_);
}

}  // namespace intercom
