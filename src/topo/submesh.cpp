#include "intercom/topo/submesh.hpp"

#include <algorithm>

#include "intercom/util/error.hpp"

namespace intercom {

Group row_group(const Mesh2D& mesh, int row) {
  INTERCOM_REQUIRE(row >= 0 && row < mesh.rows(), "row out of range");
  std::vector<int> m(static_cast<std::size_t>(mesh.cols()));
  for (int c = 0; c < mesh.cols(); ++c) {
    m[static_cast<std::size_t>(c)] = mesh.node_at(row, c);
  }
  return Group(std::move(m));
}

Group col_group(const Mesh2D& mesh, int col) {
  INTERCOM_REQUIRE(col >= 0 && col < mesh.cols(), "column out of range");
  std::vector<int> m(static_cast<std::size_t>(mesh.rows()));
  for (int r = 0; r < mesh.rows(); ++r) {
    m[static_cast<std::size_t>(r)] = mesh.node_at(r, col);
  }
  return Group(std::move(m));
}

Group whole_mesh_group(const Mesh2D& mesh) {
  return Group::contiguous(mesh.node_count());
}

GroupLayout analyze_group(const Mesh2D& mesh, const Group& group) {
  GroupLayout layout;
  const int p = group.size();
  if (p == 1) {
    layout.structure = GroupStructure::kSingleton;
    return layout;
  }
  // Bounding box of the member coordinates.
  int rmin = mesh.rows(), rmax = -1, cmin = mesh.cols(), cmax = -1;
  for (int rank = 0; rank < p; ++rank) {
    int node = group.physical(rank);
    if (node >= mesh.node_count()) {
      layout.structure = GroupStructure::kUnstructured;
      return layout;
    }
    Coord c = mesh.coord_of(node);
    rmin = std::min(rmin, c.row);
    rmax = std::max(rmax, c.row);
    cmin = std::min(cmin, c.col);
    cmax = std::max(cmax, c.col);
  }
  const int box_rows = rmax - rmin + 1;
  const int box_cols = cmax - cmin + 1;
  if (box_rows * box_cols != p) {
    layout.structure = GroupStructure::kUnstructured;
    return layout;
  }
  // The member count matches the bounding box; verify row-major enumeration.
  for (int rank = 0; rank < p; ++rank) {
    Coord expect{rmin + rank / box_cols, cmin + rank % box_cols};
    if (mesh.coord_of(group.physical(rank)) != expect) {
      layout.structure = GroupStructure::kUnstructured;
      return layout;
    }
  }
  layout.submesh = SubmeshInfo{rmin, cmin, box_rows, box_cols};
  if (box_rows == 1) {
    layout.structure = GroupStructure::kPhysicalRow;
  } else if (box_cols == 1) {
    layout.structure = GroupStructure::kPhysicalColumn;
  } else {
    layout.structure = GroupStructure::kRectSubmesh;
  }
  return layout;
}

}  // namespace intercom
