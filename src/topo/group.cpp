#include "intercom/topo/group.hpp"

#include <unordered_set>

#include "intercom/util/error.hpp"

namespace intercom {

Group Group::contiguous(int p) {
  INTERCOM_REQUIRE(p >= 1, "group must have at least one member");
  std::vector<int> m(static_cast<std::size_t>(p));
  for (int i = 0; i < p; ++i) m[static_cast<std::size_t>(i)] = i;
  return Group(std::move(m));
}

Group Group::strided(int first, int stride, int p) {
  INTERCOM_REQUIRE(p >= 1, "group must have at least one member");
  std::vector<int> m(static_cast<std::size_t>(p));
  for (int i = 0; i < p; ++i) m[static_cast<std::size_t>(i)] = first + i * stride;
  return Group(std::move(m));
}

Group::Group(std::vector<int> members) : members_(std::move(members)) {
  INTERCOM_REQUIRE(!members_.empty(), "group must have at least one member");
  check_distinct();
}

Group::Group(std::initializer_list<int> members)
    : Group(std::vector<int>(members)) {}

void Group::check_distinct() const {
  std::unordered_set<int> seen;
  for (int m : members_) {
    INTERCOM_REQUIRE(m >= 0, "group members must be nonnegative node ids");
    INTERCOM_REQUIRE(seen.insert(m).second, "group members must be distinct");
  }
}

int Group::physical(int rank) const {
  INTERCOM_REQUIRE(rank >= 0 && rank < size(), "logical rank out of range");
  return members_[static_cast<std::size_t>(rank)];
}

int Group::rank_of(int node) const {
  for (std::size_t i = 0; i < members_.size(); ++i) {
    if (members_[i] == node) return static_cast<int>(i);
  }
  return -1;
}

Group Group::slice(int offset, int stride, int count) const {
  INTERCOM_REQUIRE(count >= 1, "slice must have at least one member");
  INTERCOM_REQUIRE(stride >= 1, "slice stride must be positive");
  INTERCOM_REQUIRE(offset >= 0 && offset + (count - 1) * stride < size(),
                   "slice exceeds group bounds");
  std::vector<int> m(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    m[static_cast<std::size_t>(i)] = physical(offset + i * stride);
  }
  return Group(std::move(m));
}

}  // namespace intercom
