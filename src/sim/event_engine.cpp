#include "intercom/sim/event_engine.hpp"

#include <algorithm>

#include "intercom/util/error.hpp"

namespace intercom {

namespace {
// splitmix64: mixes (seed, transfer id) into the wait-queue tie-break key.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}
}  // namespace

PacketNetwork::PacketNetwork(std::shared_ptr<const Topology> topology,
                             PacketNetParams params)
    : topology_(std::move(topology)), params_(params), routes_(topology_) {
  INTERCOM_REQUIRE(topology_ != nullptr, "topology must not be null");
  if (params_.packet_bytes == 0) {
    throw ConfigError("packet network: packet_bytes must be positive");
  }
  const auto links = static_cast<std::size_t>(topology_->directed_link_count());
  channels_.resize(links);
  link_transfers_.assign(links, 0);
  link_conflicts_.assign(links, 0);
}

double PacketNetwork::packet_seconds(const Xfer& x, int pkt) const {
  const std::size_t payload =
      pkt + 1 == x.packets ? x.last_packet_bytes : params_.packet_bytes;
  return static_cast<double>(payload) * x.serialization;
}

int PacketNetwork::submit(int src, int dst, std::size_t bytes, double start) {
  const int n = topology_->node_count();
  INTERCOM_REQUIRE(src >= 0 && src < n && dst >= 0 && dst < n,
                   "transfer endpoint outside the topology");
  // Reuse a recycled slot; grow only when all slots are live, so
  // steady-state traffic never touches the heap.
  int id;
  if (!free_slots_.empty()) {
    id = free_slots_.back();
    free_slots_.pop_back();
  } else {
    id = static_cast<int>(xfers_.size());
    xfers_.emplace_back();
  }
  Xfer& x = xfers_[static_cast<std::size_t>(id)];
  x.src = src;
  x.dst = dst;
  x.bytes = bytes;
  x.start = start;
  x.route = &routes_.of(src, dst);
  x.serial = ++next_serial_;
  x.tie = mix64(params_.seed ^ (x.serial << 1));
  const std::size_t per = params_.packet_bytes;
  x.packets = bytes == 0 ? 1 : static_cast<int>((bytes + per - 1) / per);
  x.last_packet_bytes =
      bytes == 0 ? 0 : bytes - per * static_cast<std::size_t>(x.packets - 1);
  x.serialization = params_.machine.beta_for(bytes);
  x.pending = x.packets;
  x.delivered = false;
  x.conflicted = false;
  x.delivery_time = 0.0;
  x.injection_end = 0.0;
  const double alpha = params_.machine.alpha_for(bytes);
  const double tau = params_.machine.tau_per_hop;
  if (x.route->empty()) {
    // Self-transfer (or degenerate route): pure startup, no channels.
    x.pending = 1;
    push(Event{start + alpha, kDeliver, 0, -1, id, 0, 0});
    return id;
  }
  // Every packet becomes ready on the first channel once the header falls
  // through to it; the channel itself serializes them in packet order.
  const double ready = start + alpha + tau;
  for (int pkt = 0; pkt < x.packets; ++pkt) {
    push(Event{ready, kRequest, 0, (*x.route)[0], id, pkt, 0});
  }
  return id;
}

void PacketNetwork::push(Event ev) {
  ev.seq = ++next_seq_;
  events_.push(ev);
}

double PacketNetwork::next_time() const {
  INTERCOM_CHECK(!events_.empty());
  return events_.top().time;
}

void PacketNetwork::step() {
  INTERCOM_CHECK(!events_.empty());
  const Event ev = events_.top();
  events_.pop();
  handle(ev);
}

void PacketNetwork::drain() {
  while (!events_.empty()) step();
}

void PacketNetwork::run_until_delivered(int xfer) {
  while (!delivered(xfer)) {
    INTERCOM_CHECK(!events_.empty());
    step();
  }
}

void PacketNetwork::handle(const Event& ev) {
  switch (ev.kind) {
    case kRequest: {
      Channel& ch = channels_[static_cast<std::size_t>(ev.link)];
      Xfer& x = xfers_[static_cast<std::size_t>(ev.xfer)];
      // Packet 0 is granted first on every hop of its transfer (the wait
      // queue breaks same-transfer ties by packet index), so its request
      // marks the transfer's one crossing of this channel.
      if (ev.pkt == 0) {
        ++link_transfers_[static_cast<std::size_t>(ev.link)];
      }
      const Waiter w{ev.time, x.tie, ev.xfer, ev.pkt, ev.hop};
      // No free event in flight means the waiter queue is empty (the last
      // free drained it), so the packet starts as soon as the channel's busy
      // horizon allows — which may be later than now when the submission's
      // start time lay in the processed past.
      if (!ch.free_pending) {
        grant(ev.link, w, std::max(ev.time, ch.busy_until));
      } else {
        ch.waiters.push(w);
      }
      break;
    }
    case kFree: {
      Channel& ch = channels_[static_cast<std::size_t>(ev.link)];
      ch.free_pending = false;
      if (!ch.waiters.empty()) {
        const Waiter w = ch.waiters.top();
        ch.waiters.pop();
        grant(ev.link, w, std::max(ev.time, w.ready));
      }
      break;
    }
    case kDeliver: {
      Xfer& x = xfers_[static_cast<std::size_t>(ev.xfer)];
      if (--x.pending == 0) {
        x.delivered = true;
        x.delivery_time = ev.time;
        if (on_delivery_) on_delivery_(ev.xfer, ev.time);
      }
      break;
    }
  }
}

void PacketNetwork::grant(int link, const Waiter& w, double t) {
  Channel& ch = channels_[static_cast<std::size_t>(link)];
  Xfer& x = xfers_[static_cast<std::size_t>(w.xfer)];
  if (t > w.ready && ch.last_serial != x.serial && ch.last_serial != 0) {
    x.conflicted = true;
    ++link_conflicts_[static_cast<std::size_t>(link)];
  }
  ch.last_serial = x.serial;
  ++packets_granted_;
  const double ser = packet_seconds(x, w.pkt);
  const double free_at = t + ser;
  // Virtual-time co-occupancy: drop busy windows that ended before this
  // packet wanted the channel; one window per transfer, extended as its
  // packets stream through, so the entry count is the distinct-transfer
  // occupancy.
  std::erase_if(ch.recent,
                [&](const auto& iv) { return iv.first <= w.ready; });
  bool extended = false;
  for (auto& iv : ch.recent) {
    if (iv.second == x.serial) {
      iv.first = std::max(iv.first, free_at);
      extended = true;
      break;
    }
  }
  if (!extended) ch.recent.emplace_back(free_at, x.serial);
  peak_link_load_ =
      std::max(peak_link_load_, static_cast<int>(ch.recent.size()));
  ch.busy_until = free_at;
  ch.free_pending = true;
  push(Event{free_at, kFree, 0, link, w.xfer, w.pkt, w.hop});
  if (w.hop == 0) {
    x.injection_end = std::max(x.injection_end, free_at);
  }
  if (static_cast<std::size_t>(w.hop) + 1 == x.route->size()) {
    push(Event{free_at, kDeliver, 0, -1, w.xfer, w.pkt, 0});
  } else {
    // Cut-through: the head moves on one hop latency after the grant.
    push(Event{t + params_.machine.tau_per_hop, kRequest, 0,
               (*x.route)[static_cast<std::size_t>(w.hop) + 1], w.xfer, w.pkt,
               w.hop + 1});
  }
}

const PacketNetwork::Xfer& PacketNetwork::xfer_at(int id) const {
  INTERCOM_REQUIRE(id >= 0 && static_cast<std::size_t>(id) < xfers_.size() &&
                       xfers_[static_cast<std::size_t>(id)].serial != 0,
                   "unknown transfer id");
  return xfers_[static_cast<std::size_t>(id)];
}

bool PacketNetwork::delivered(int xfer) const {
  return xfer_at(xfer).delivered;
}

double PacketNetwork::delivery_time(int xfer) const {
  const Xfer& x = xfer_at(xfer);
  INTERCOM_REQUIRE(x.delivered, "transfer not yet delivered");
  return x.delivery_time;
}

double PacketNetwork::injection_end(int xfer) const {
  const Xfer& x = xfer_at(xfer);
  INTERCOM_REQUIRE(x.delivered, "transfer not yet delivered");
  // A self-transfer never occupies a channel; injection ends at delivery.
  return x.route->empty() ? x.delivery_time : x.injection_end;
}

bool PacketNetwork::conflicted(int xfer) const {
  return xfer_at(xfer).conflicted;
}

void PacketNetwork::recycle(int xfer) {
  const Xfer& x = xfer_at(xfer);
  INTERCOM_REQUIRE(x.delivered, "only delivered transfers can be recycled");
  xfers_[static_cast<std::size_t>(xfer)].serial = 0;
  free_slots_.push_back(xfer);
}

void PacketNetwork::set_delivery_handler(DeliveryHandler handler) {
  on_delivery_ = std::move(handler);
}

void PacketNetwork::reset() {
  const auto links = channels_.size();
  channels_.assign(links, Channel{});
  xfers_.clear();
  free_slots_.clear();
  events_ = {};
  next_serial_ = 0;
  next_seq_ = 0;
  packets_granted_ = 0;
  peak_link_load_ = 0;
  link_transfers_.assign(links, 0);
  link_conflicts_.assign(links, 0);
}

}  // namespace intercom
