#include "intercom/sim/engine.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <queue>
#include <sstream>
#include <unordered_map>
#include <vector>

#include "intercom/sim/event_engine.hpp"
#include "intercom/sim/network.hpp"
#include "intercom/topo/topology.hpp"
#include "intercom/util/error.hpp"
#include "intercom/util/rng.hpp"

namespace intercom {

namespace {

// A rendezvous transfer in flight.  Created when both halves are posted;
// spends its startup phase until data_start, then drains `remaining` bytes
// at the shared-bandwidth rate.
struct Flow {
  int src = -1;
  int dst = -1;
  std::vector<int> links;
  double remaining = 0.0;
  double rate = 0.0;        // bytes per second under current sharing
  double beta = 0.0;        // protocol-aware per-byte time for this message
  bool active = false;      // in data phase (occupying links)
  bool done = false;
  std::uint64_t version = 0;  // invalidates stale finish events
  std::size_t bytes = 0;
  double posted = 0.0;
  double data_start = 0.0;
};

struct NodeState {
  const NodeProgram* prog = nullptr;
  std::size_t pc = 0;
  bool send_done = false;
  bool recv_done = false;
  bool send_posted = false;
  bool recv_posted = false;
  bool busy = false;  // combine in progress

  bool done() const { return pc >= prog->ops.size(); }
  const Op& op() const { return prog->ops[pc]; }
  bool op_complete() const {
    const Op& o = op();
    return (!o.has_send() || send_done) && (!o.has_recv() || recv_done);
  }
  void advance() {
    ++pc;
    send_done = recv_done = false;
    send_posted = recv_posted = false;
  }
};

struct PendingHalf {
  int peer = -1;
  int tag = 0;
  std::size_t bytes = 0;
  bool valid = false;
};

enum class EventKind { kDataStart, kFlowFinish, kCombineDone };

struct Event {
  double time = 0.0;
  std::uint64_t seq = 0;  // FIFO tie-break for equal times
  EventKind kind = EventKind::kDataStart;
  std::size_t flow = 0;       // kDataStart / kFlowFinish
  std::uint64_t version = 0;  // kFlowFinish
  int node = -1;              // kCombineDone
};

struct EventLater {
  bool operator()(const Event& a, const Event& b) const {
    if (a.time != b.time) return a.time > b.time;
    return a.seq > b.seq;
  }
};

class Engine {
 public:
  Engine(std::shared_ptr<const Topology> topology, const SimParams& params,
         const Schedule& schedule)
      : topology_(*topology),
        params_(params),
        schedule_(schedule),
        loads_(topology->directed_link_count()),
        rng_(params.jitter_seed) {
    if (params_.engine == SimEngine::kPacket) {
      PacketNetParams net;
      net.machine = params_.machine;
      net.packet_bytes = params_.packet_bytes;
      net.seed = params_.tie_seed;
      net_ = std::make_unique<PacketNetwork>(std::move(topology),
                                             std::move(net));
      net_->set_delivery_handler(
          [this](int xfer, double time) { finish_packet_flow(xfer, time); });
    }
  }

  SimResult run() {
    for (const auto& prog : schedule_.programs()) {
      INTERCOM_REQUIRE(prog.node >= 0 && prog.node < topology_.node_count(),
                       "schedule references a node outside the topology");
      nodes_[prog.node] = NodeState{&prog, 0, false, false, false, false,
                                    false};
    }
    for (auto& [node, state] : nodes_) {
      (void)state;
      progress(node, 0.0);
    }
    // Two event sources share the virtual clock: the node/flow queue and
    // (packet mode) the network.  The earlier timestamp advances; schedule
    // events win exact ties so same-instant stage batches stay batched.
    constexpr double kNever = std::numeric_limits<double>::infinity();
    while (!events_.empty() || (net_ != nullptr && !net_->idle())) {
      const double tn =
          net_ != nullptr && !net_->idle() ? net_->next_time() : kNever;
      const double ts = events_.empty() ? kNever : events_.top().time;
      if (tn < ts) {
        net_->step();
        continue;
      }
      const double t = ts;
      advance_flows(t);
      // Drain every event scheduled for this instant before recomputing
      // rates once; synchronized stages (e.g. ring steps) produce large
      // same-time batches.
      while (!events_.empty() && events_.top().time <= t) {
        const Event ev = events_.top();
        events_.pop();
        handle(ev, t);
      }
      if (rates_dirty_) recompute_rates(t);
    }
    for (const auto& [node, state] : nodes_) {
      if (!state.done()) {
        INTERCOM_REQUIRE(false, "simulation deadlock at node " +
                                    std::to_string(node) + " op " +
                                    std::to_string(state.pc) + " of " +
                                    schedule_.algorithm());
      }
    }
    SimResult result;
    result.seconds = finish_time_ + schedule_.levels() *
                                        params_.machine.per_level_overhead;
    result.peak_link_load =
        net_ != nullptr ? net_->peak_link_load() : loads_.peak_load();
    result.transfers = transfer_count_;
    result.bytes_moved = bytes_moved_;
    result.trace = std::move(trace_);
    return result;
  }

 private:
  void push(Event ev) {
    ev.seq = ++seq_;
    events_.push(ev);
  }

  void handle(const Event& ev, double t) {
    switch (ev.kind) {
      case EventKind::kDataStart: {
        Flow& f = flows_[ev.flow];
        f.active = true;
        f.data_start = t;
        loads_.add(f.links);
        rates_dirty_ = true;
        break;
      }
      case EventKind::kFlowFinish: {
        Flow& f = flows_[ev.flow];
        if (f.done || !f.active || ev.version != f.version) break;
        f.done = true;
        f.active = false;
        loads_.remove(f.links);
        rates_dirty_ = true;
        finish_time_ = std::max(finish_time_, t);
        if (params_.record_trace) {
          trace_.push_back(TransferRecord{f.src, f.dst, f.bytes, f.posted,
                                          f.data_start, t});
        }
        // Copy the endpoints: completing a half can create new flows, which
        // reallocates flows_ and would dangle `f`.
        const int src = f.src;
        const int dst = f.dst;
        complete_half(src, /*send=*/true, t);
        complete_half(dst, /*send=*/false, t);
        break;
      }
      case EventKind::kCombineDone: {
        NodeState& n = nodes_.at(ev.node);
        INTERCOM_CHECK(n.busy);
        n.busy = false;
        finish_time_ = std::max(finish_time_, t);
        n.advance();
        progress(ev.node, t);
        break;
      }
    }
  }

  void complete_half(int node, bool send, double t) {
    NodeState& n = nodes_.at(node);
    INTERCOM_CHECK(!n.done());
    if (send) {
      n.send_done = true;
    } else {
      n.recv_done = true;
    }
    if (n.op_complete()) {
      n.advance();
      progress(node, t);
    }
  }

  // Runs node forward until it blocks on communication, a combine, or the
  // end of its program.
  void progress(int node, double t) {
    NodeState& n = nodes_.at(node);
    while (!n.done() && !n.busy) {
      const Op& op = n.op();
      if (op.kind == OpKind::kCopy) {
        n.advance();
        continue;
      }
      if (op.kind == OpKind::kCombine) {
        const double dt =
            static_cast<double>(op.src.bytes) * params_.machine.gamma;
        if (dt <= 0.0) {
          finish_time_ = std::max(finish_time_, t);
          n.advance();
          continue;
        }
        n.busy = true;
        push(Event{t + dt, 0, EventKind::kCombineDone, 0, 0, node});
        return;
      }
      // Communication op: post halves once, then block until completion.
      if (op.has_send() && !n.send_posted) {
        n.send_posted = true;
        PendingHalf& half = pending_send_[node];
        INTERCOM_CHECK(!half.valid);
        half = PendingHalf{op.peer, op.tag, op.src.bytes, true};
        try_match(node, op.peer, t);
      }
      if (op.has_recv() && !n.recv_posted) {
        n.recv_posted = true;
        PendingHalf& half = pending_recv_[node];
        INTERCOM_CHECK(!half.valid);
        half = PendingHalf{op.recv_peer(), op.recv_tag(), op.dst.bytes, true};
        try_match(op.recv_peer(), node, t);
      }
      if (n.op_complete()) {
        n.advance();
        continue;
      }
      return;
    }
  }

  // Creates a flow when sender `a` and receiver `b` have matching pending
  // halves.
  void try_match(int a, int b, double t) {
    auto sit = pending_send_.find(a);
    auto rit = pending_recv_.find(b);
    if (sit == pending_send_.end() || !sit->second.valid) return;
    if (rit == pending_recv_.end() || !rit->second.valid) return;
    if (sit->second.peer != b || rit->second.peer != a) return;
    INTERCOM_REQUIRE(sit->second.tag == rit->second.tag,
                     "mismatched transfer tags in simulation");
    INTERCOM_REQUIRE(sit->second.bytes == rit->second.bytes,
                     "mismatched transfer lengths in simulation");
    const std::size_t bytes = sit->second.bytes;
    sit->second.valid = false;
    rit->second.valid = false;
    Flow f;
    f.src = a;
    f.dst = b;
    f.remaining = static_cast<double>(bytes);
    f.beta = params_.machine.beta_for(bytes);
    f.bytes = bytes;
    f.posted = t;
    ++transfer_count_;
    bytes_moved_ += bytes;
    const double jitter = params_.jitter_mean > 0.0
                              ? rng_.next_exponential(params_.jitter_mean)
                              : 0.0;
    if (net_ != nullptr) {
      // Packet mode: the network charges alpha and the per-hop latency
      // itself; jitter shifts the posting instant.
      f.data_start = t + jitter + params_.machine.alpha_for(bytes);
      flows_.push_back(std::move(f));
      const int xfer = net_->submit(a, b, bytes, t + jitter);
      net_flow_.emplace(xfer, flows_.size() - 1);
      return;
    }
    f.links = topology_.route(a, b);
    // Protocol-aware startup plus the per-hop worm-hole header latency.
    const double startup = params_.machine.alpha_for(bytes) +
                           params_.machine.tau_per_hop *
                               static_cast<double>(f.links.size()) +
                           jitter;
    flows_.push_back(std::move(f));
    push(Event{t + startup, 0, EventKind::kDataStart, flows_.size() - 1, 0,
               -1});
  }

  // Packet-mode flow completion: the network delivered transfer `xfer` at
  // virtual time `t`.
  void finish_packet_flow(int xfer, double t) {
    const auto it = net_flow_.find(xfer);
    INTERCOM_CHECK(it != net_flow_.end());
    const std::size_t index = it->second;
    net_flow_.erase(it);
    net_->recycle(xfer);
    Flow& f = flows_[index];
    f.done = true;
    finish_time_ = std::max(finish_time_, t);
    if (params_.record_trace) {
      trace_.push_back(
          TransferRecord{f.src, f.dst, f.bytes, f.posted, f.data_start, t});
    }
    // Copy the endpoints: completing a half can create new flows, which
    // reallocates flows_ and would dangle `f`.
    const int src = f.src;
    const int dst = f.dst;
    complete_half(src, /*send=*/true, t);
    complete_half(dst, /*send=*/false, t);
  }

  // Integrates every active flow's drained bytes up to time t.
  void advance_flows(double t) {
    const double dt = t - last_time_;
    if (dt > 0.0) {
      for (Flow& f : flows_) {
        if (f.active) f.remaining = std::max(0.0, f.remaining - f.rate * dt);
      }
    }
    last_time_ = std::max(last_time_, t);
  }

  // Recomputes shared-bandwidth rates and refreshes finish predictions for
  // flows whose rate changed.
  void recompute_rates(double t) {
    rates_dirty_ = false;
    for (std::size_t i = 0; i < flows_.size(); ++i) {
      Flow& f = flows_[i];
      if (!f.active) continue;
      const double s = loads_.sharing(f.links, params_.machine.link_capacity);
      double finish_dt = 0.0;
      double rate = 0.0;
      if (f.beta <= 0.0) {
        rate = 0.0;  // infinite bandwidth: finishes immediately
        finish_dt = 0.0;
      } else {
        rate = 1.0 / (f.beta * s);
        finish_dt = f.remaining * f.beta * s;
      }
      if (rate == f.rate && f.version != 0) continue;  // prediction still valid
      f.rate = rate;
      ++f.version;
      push(Event{t + finish_dt, 0, EventKind::kFlowFinish, i, f.version, -1});
    }
  }

  const Topology& topology_;
  const SimParams& params_;
  const Schedule& schedule_;

  std::unordered_map<int, NodeState> nodes_;
  std::unordered_map<int, PendingHalf> pending_send_;
  std::unordered_map<int, PendingHalf> pending_recv_;
  std::vector<Flow> flows_;
  LinkLoadTracker loads_;
  std::unique_ptr<PacketNetwork> net_;
  std::unordered_map<int, std::size_t> net_flow_;
  Rng rng_;
  std::priority_queue<Event, std::vector<Event>, EventLater> events_;
  std::uint64_t seq_ = 0;
  double last_time_ = 0.0;
  double finish_time_ = 0.0;
  bool rates_dirty_ = false;
  std::size_t transfer_count_ = 0;
  std::size_t bytes_moved_ = 0;
  std::vector<TransferRecord> trace_;
};

}  // namespace

WormholeSimulator::WormholeSimulator(std::shared_ptr<const Topology> topology,
                                     SimParams params)
    : topology_(std::move(topology)), params_(params) {
  INTERCOM_REQUIRE(topology_ != nullptr, "topology must not be null");
  if (params_.packet_bytes == 0) {
    throw ConfigError("sim params: packet_bytes must be positive");
  }
  if (params_.jitter_mean < 0.0) {
    throw ConfigError("sim params: jitter_mean must be nonnegative");
  }
}

WormholeSimulator::WormholeSimulator(Mesh2D mesh, SimParams params)
    : WormholeSimulator(std::make_shared<MeshTopology>(mesh), params) {}

SimResult WormholeSimulator::run(const Schedule& schedule) const {
  Engine engine(topology_, params_, schedule);
  return engine.run();
}

std::string render_timeline(const SimResult& result, int columns) {
  INTERCOM_REQUIRE(columns >= 1, "timeline needs at least one column");
  if (result.trace.empty()) return "(no trace recorded)\n";
  double horizon = 0.0;
  std::map<int, std::string> rows;
  for (const TransferRecord& r : result.trace) {
    horizon = std::max(horizon, r.finish);
    rows.try_emplace(r.src, std::string(static_cast<std::size_t>(columns), '.'));
    rows.try_emplace(r.dst, std::string(static_cast<std::size_t>(columns), '.'));
  }
  if (horizon <= 0.0) horizon = 1.0;
  auto bucket = [&](double t) {
    int b = static_cast<int>(t / horizon * columns);
    return std::clamp(b, 0, columns - 1);
  };
  for (const TransferRecord& r : result.trace) {
    const int b0 = bucket(r.posted);
    const int b1 = bucket(r.data_start);
    const int b2 = bucket(r.finish);
    for (auto* row : {&rows[r.src], &rows[r.dst]}) {
      for (int b = b0; b <= b2; ++b) {
        char& c = (*row)[static_cast<std::size_t>(b)];
        const char mark = b < b1 ? '-' : '#';
        if (c == '.' || (c == '-' && mark == '#')) c = mark;
      }
    }
  }
  std::ostringstream os;
  os << "timeline (0 .. " << horizon << " s; '-' startup, '#' data)\n";
  for (const auto& [node, row] : rows) {
    os << "node " << node << '\t' << row << '\n';
  }
  return os.str();
}

}  // namespace intercom
