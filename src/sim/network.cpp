#include "intercom/sim/network.hpp"

#include <algorithm>

#include "intercom/util/error.hpp"

namespace intercom {

LinkLoadTracker::LinkLoadTracker(int directed_link_count)
    : load_(static_cast<std::size_t>(directed_link_count), 0) {
  INTERCOM_REQUIRE(directed_link_count >= 0,
                   "link count must be nonnegative");
}

LinkLoadTracker::LinkLoadTracker(const Mesh2D& mesh)
    : LinkLoadTracker(mesh.directed_link_count()) {}

void LinkLoadTracker::add(const std::vector<int>& route_links) {
  for (int l : route_links) {
    int& v = load_[static_cast<std::size_t>(l)];
    ++v;
    peak_load_ = std::max(peak_load_, v);
  }
}

void LinkLoadTracker::remove(const std::vector<int>& route_links) {
  for (int l : route_links) {
    int& v = load_[static_cast<std::size_t>(l)];
    INTERCOM_CHECK(v > 0);
    --v;
  }
}

double LinkLoadTracker::sharing(const std::vector<int>& route_links,
                                double link_capacity) const {
  INTERCOM_REQUIRE(link_capacity > 0.0, "link capacity must be positive");
  double s = 1.0;
  for (int l : route_links) {
    const double shared =
        static_cast<double>(load_[static_cast<std::size_t>(l)]) /
        link_capacity;
    s = std::max(s, shared);
  }
  return s;
}

int LinkLoadTracker::load(int link_index) const {
  return load_[static_cast<std::size_t>(link_index)];
}

RouteTable::RouteTable(std::shared_ptr<const Topology> topology)
    : topology_(std::move(topology)) {
  INTERCOM_REQUIRE(topology_ != nullptr, "topology must not be null");
}

const std::vector<int>& RouteTable::of(int src, int dst) {
  const std::uint64_t key =
      (static_cast<std::uint64_t>(static_cast<std::uint32_t>(src)) << 32) |
      static_cast<std::uint32_t>(dst);
  auto it = cache_.find(key);
  if (it == cache_.end()) {
    it = cache_.emplace(key, topology_->route(src, dst)).first;
  }
  return it->second;
}

}  // namespace intercom
