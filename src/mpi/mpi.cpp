#include "intercom/mpi/mpi.hpp"

#include <algorithm>
#include <cstring>

#include "intercom/util/error.hpp"

namespace intercom::mpi {

namespace {

std::span<std::byte> bytes_of(void* p, std::size_t n) {
  return std::span<std::byte>(static_cast<std::byte*>(p), n);
}

// MPI semantics use distinct send/recv buffers; the library's collectives
// are in-place over the full vector, so the veneer stages through a scratch
// vector when needed.
std::vector<std::byte> staged(const void* src, std::size_t nbytes) {
  std::vector<std::byte> v(nbytes);
  if (nbytes > 0 && src != nullptr) std::memcpy(v.data(), src, nbytes);
  return v;
}

template <typename T>
ReduceOp pick(ReduceKind op) {
  switch (op) {
    case ReduceKind::kSum:
      return sum_op<T>();
    case ReduceKind::kProd:
      return prod_op<T>();
    case ReduceKind::kMax:
      return max_op<T>();
    case ReduceKind::kMin:
      return min_op<T>();
  }
  INTERCOM_REQUIRE(false, "unknown reduce kind");
  return {};
}

}  // namespace

std::size_t datatype_size(Datatype dt) {
  switch (dt) {
    case Datatype::kByte:
      return 1;
    case Datatype::kInt:
      return sizeof(int);
    case Datatype::kLongLong:
      return sizeof(long long);
    case Datatype::kFloat:
      return sizeof(float);
    case Datatype::kDouble:
      return sizeof(double);
  }
  INTERCOM_REQUIRE(false, "unknown datatype");
  return 0;
}

ReduceOp reduce_op_for(Datatype dt, ReduceKind op) {
  switch (dt) {
    case Datatype::kByte:
      // Byte reductions treat the buffer as unsigned integers.
      return pick<unsigned char>(op);
    case Datatype::kInt:
      return pick<int>(op);
    case Datatype::kLongLong:
      return pick<long long>(op);
    case Datatype::kFloat:
      return pick<float>(op);
    case Datatype::kDouble:
      return pick<double>(op);
  }
  INTERCOM_REQUIRE(false, "unknown datatype");
  return {};
}

Comm comm_world(Node& node) { return Comm(node.world()); }

int bcast(void* buffer, std::size_t count, Datatype dt, int root, Comm& comm) {
  if (buffer == nullptr && count > 0) return kErrArg;
  if (root < 0 || root >= comm.size()) return kErrArg;
  const std::size_t es = datatype_size(dt);
  comm.communicator().broadcast_bytes(bytes_of(buffer, count * es), es, root);
  return kSuccess;
}

int reduce(const void* sendbuf, void* recvbuf, std::size_t count, Datatype dt,
           ReduceKind op, int root, Comm& comm) {
  if (root < 0 || root >= comm.size()) return kErrArg;
  if ((sendbuf == nullptr || recvbuf == nullptr) && count > 0) return kErrArg;
  const std::size_t es = datatype_size(dt);
  const std::size_t nbytes = count * es;
  std::vector<std::byte> work = staged(sendbuf, nbytes);
  comm.communicator().combine_to_one_bytes(work, reduce_op_for(dt, op), root);
  if (comm.rank() == root && nbytes > 0) {
    std::memcpy(recvbuf, work.data(), nbytes);
  }
  return kSuccess;
}

int allreduce(const void* sendbuf, void* recvbuf, std::size_t count,
              Datatype dt, ReduceKind op, Comm& comm) {
  if ((sendbuf == nullptr || recvbuf == nullptr) && count > 0) return kErrArg;
  const std::size_t es = datatype_size(dt);
  const std::size_t nbytes = count * es;
  std::vector<std::byte> work = staged(sendbuf, nbytes);
  comm.communicator().combine_to_all_bytes(work, reduce_op_for(dt, op));
  if (nbytes > 0) std::memcpy(recvbuf, work.data(), nbytes);
  return kSuccess;
}

int scatter(const void* sendbuf, std::size_t count, void* recvbuf, int root,
            Datatype dt, Comm& comm) {
  if (root < 0 || root >= comm.size()) return kErrArg;
  if (recvbuf == nullptr && count > 0) return kErrArg;
  const std::size_t es = datatype_size(dt);
  const std::size_t p = static_cast<std::size_t>(comm.size());
  const std::size_t total = p * count * es;
  std::vector<std::byte> work(total);
  if (comm.rank() == root) {
    if (sendbuf == nullptr && total > 0) return kErrArg;
    if (total > 0) std::memcpy(work.data(), sendbuf, total);
  }
  // Equal counts make the canonical block partition exact.
  comm.communicator().scatter_bytes(work, es, root);
  const std::size_t off = static_cast<std::size_t>(comm.rank()) * count * es;
  if (count > 0) std::memcpy(recvbuf, work.data() + off, count * es);
  return kSuccess;
}

int gather(const void* sendbuf, std::size_t count, void* recvbuf, int root,
           Datatype dt, Comm& comm) {
  if (root < 0 || root >= comm.size()) return kErrArg;
  if (sendbuf == nullptr && count > 0) return kErrArg;
  const std::size_t es = datatype_size(dt);
  const std::size_t p = static_cast<std::size_t>(comm.size());
  std::vector<std::byte> work(p * count * es);
  const std::size_t off = static_cast<std::size_t>(comm.rank()) * count * es;
  if (count > 0) std::memcpy(work.data() + off, sendbuf, count * es);
  comm.communicator().gather_bytes(work, es, root);
  if (comm.rank() == root && !work.empty()) {
    if (recvbuf == nullptr) return kErrArg;
    std::memcpy(recvbuf, work.data(), work.size());
  }
  return kSuccess;
}

int allgather(const void* sendbuf, std::size_t count, void* recvbuf,
              Datatype dt, Comm& comm) {
  if ((sendbuf == nullptr || recvbuf == nullptr) && count > 0) return kErrArg;
  const std::size_t es = datatype_size(dt);
  const std::size_t p = static_cast<std::size_t>(comm.size());
  std::vector<std::byte> work(p * count * es);
  const std::size_t off = static_cast<std::size_t>(comm.rank()) * count * es;
  if (count > 0) std::memcpy(work.data() + off, sendbuf, count * es);
  comm.communicator().collect_bytes(work, es);
  if (!work.empty()) std::memcpy(recvbuf, work.data(), work.size());
  return kSuccess;
}

int reduce_scatter(const void* sendbuf, void* recvbuf,
                   const std::vector<std::size_t>& recvcounts, Datatype dt,
                   ReduceKind op, Comm& comm) {
  if (recvcounts.size() != static_cast<std::size_t>(comm.size())) {
    return kErrArg;
  }
  const std::size_t es = datatype_size(dt);
  std::size_t total = 0;
  for (std::size_t c : recvcounts) total += c;
  if ((sendbuf == nullptr || recvbuf == nullptr) && total > 0) return kErrArg;
  std::vector<std::byte> work = staged(sendbuf, total * es);
  comm.communicator().reduce_scatterv_bytes(work, recvcounts,
                                            reduce_op_for(dt, op));
  std::size_t off = 0;
  for (int r = 0; r < comm.rank(); ++r) {
    off += recvcounts[static_cast<std::size_t>(r)];
  }
  const std::size_t mine =
      recvcounts[static_cast<std::size_t>(comm.rank())] * es;
  if (mine > 0) std::memcpy(recvbuf, work.data() + off * es, mine);
  return kSuccess;
}

int barrier(Comm& comm) {
  comm.communicator().barrier();
  return kSuccess;
}

std::optional<Comm> comm_split(Node& node, Comm& comm, int color, int key) {
  // Allgather everyone's (color, key); then each member computes its new
  // group locally — the same group array on every member.
  const std::size_t p = static_cast<std::size_t>(comm.size());
  std::vector<long long> pairs(2 * p, 0);
  pairs[2 * static_cast<std::size_t>(comm.rank())] = color;
  pairs[2 * static_cast<std::size_t>(comm.rank()) + 1] = key;
  // One (color, key) pair per rank: collect with two elements per rank.
  std::vector<std::size_t> counts(p, 2);
  comm.communicator().collectv(std::span<long long>(pairs), counts);
  if (color < 0) return std::nullopt;  // MPI_UNDEFINED

  struct Entry {
    int old_rank;
    long long color;
    long long key;
  };
  std::vector<Entry> members;
  for (std::size_t r = 0; r < p; ++r) {
    if (pairs[2 * r] == color) {
      members.push_back(Entry{static_cast<int>(r), pairs[2 * r],
                              pairs[2 * r + 1]});
    }
  }
  std::stable_sort(members.begin(), members.end(),
                   [](const Entry& a, const Entry& b) {
                     if (a.key != b.key) return a.key < b.key;
                     return a.old_rank < b.old_rank;
                   });
  std::vector<int> nodes;
  nodes.reserve(members.size());
  for (const Entry& e : members) {
    nodes.push_back(comm.communicator().group().physical(e.old_rank));
  }
  // Color disambiguates concurrent sub-communicators derived from the same
  // parent.
  return Comm(node.group(Group(nodes), static_cast<std::uint32_t>(color)));
}

}  // namespace intercom::mpi
