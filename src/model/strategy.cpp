#include "intercom/model/strategy.hpp"

#include <sstream>

#include "intercom/util/error.hpp"
#include "intercom/util/factorization.hpp"

namespace intercom {

int HybridStrategy::node_count() const {
  int p = 1;
  for (int d : dims) p *= d;
  return p;
}

std::string HybridStrategy::label() const {
  std::ostringstream os;
  if (dims.size() == 1) {
    os << "1x" << dims[0];
  } else {
    for (std::size_t i = 0; i < dims.size(); ++i) {
      if (i > 0) os << 'x';
      os << dims[i];
    }
  }
  os << ',';
  const std::size_t k = dims.size();
  if (inner == InnerAlg::kCirculant) {
    for (std::size_t i = 0; i < k; ++i) os << 'T';
  } else if (inner == InnerAlg::kShortVector) {
    // S...S M C...C with k-1 scatters/collects.
    for (std::size_t i = 0; i + 1 < k; ++i) os << 'S';
    os << 'M';
    for (std::size_t i = 0; i + 1 < k; ++i) os << 'C';
  } else {
    for (std::size_t i = 0; i < k; ++i) os << 'S';
    for (std::size_t i = 0; i < k; ++i) os << 'C';
  }
  return os.str();
}

std::vector<HybridStrategy> enumerate_strategies(int p, int max_dims) {
  INTERCOM_REQUIRE(p >= 1, "group size must be at least 1");
  INTERCOM_REQUIRE(max_dims >= 1, "max_dims must be at least 1");
  std::vector<HybridStrategy> out;
  // Pure short-vector algorithm.
  out.push_back(HybridStrategy{{p}, InnerAlg::kShortVector, false});
  if (p == 1) return out;
  // Pure long-vector algorithm.
  out.push_back(HybridStrategy{{p}, InnerAlg::kScatterCollect, false});
  // True hybrids over every ordered factorization with k >= 2 factors.
  for (const auto& dims64 : all_ordered_factorizations(p, max_dims, 2)) {
    if (dims64.size() < 2) continue;
    std::vector<int> dims(dims64.begin(), dims64.end());
    out.push_back(HybridStrategy{dims, InnerAlg::kShortVector, false});
    out.push_back(HybridStrategy{dims, InnerAlg::kScatterCollect, false});
  }
  return out;
}

}  // namespace intercom
