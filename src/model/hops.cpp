#include "intercom/model/hops.hpp"

#include <algorithm>

#include "intercom/util/error.hpp"

namespace intercom {

namespace {

// splitmix64: tiny, seedable, and good enough for pair sampling.  Not
// std::mt19937 so the sampled statistic is identical across standard
// libraries.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

HopStats hop_stats(const Topology& topology, std::uint64_t max_exact_pairs,
                   std::uint64_t sample_pairs, std::uint64_t seed) {
  const auto n = static_cast<std::uint64_t>(topology.node_count());
  HopStats stats;
  if (n < 2) {
    stats.exact = true;
    return stats;
  }
  const std::uint64_t total_pairs = n * (n - 1);
  std::uint64_t hop_sum = 0;
  if (total_pairs <= max_exact_pairs) {
    for (std::uint64_t src = 0; src < n; ++src) {
      for (std::uint64_t dst = 0; dst < n; ++dst) {
        if (src == dst) continue;
        const int hops = topology.min_hops(static_cast<int>(src),
                                           static_cast<int>(dst));
        stats.diameter = std::max(stats.diameter, hops);
        hop_sum += static_cast<std::uint64_t>(hops);
      }
    }
    stats.pairs = total_pairs;
    stats.exact = true;
  } else {
    if (sample_pairs == 0) {
      throw ConfigError("hop_stats: sample_pairs must be positive");
    }
    std::uint64_t state = seed;
    for (std::uint64_t i = 0; i < sample_pairs; ++i) {
      const auto src = static_cast<int>(mix64(state++) % n);
      // Skip-self encoding keeps the draw uniform over the n-1 others.
      auto dst = static_cast<int>(mix64(state++) % (n - 1));
      if (dst >= src) ++dst;
      const int hops = topology.min_hops(src, dst);
      stats.diameter = std::max(stats.diameter, hops);
      hop_sum += static_cast<std::uint64_t>(hops);
    }
    stats.pairs = sample_pairs;
    stats.exact = false;
  }
  stats.mean_hops =
      static_cast<double>(hop_sum) / static_cast<double>(stats.pairs);
  return stats;
}

}  // namespace intercom
