#include "intercom/model/optimal.hpp"

#include <functional>
#include <map>
#include <utility>

#include "intercom/model/primitive_costs.hpp"
#include "intercom/util/error.hpp"
#include "intercom/util/factorization.hpp"

namespace intercom {

namespace {

using costs::bucket_collect;
using costs::bucket_distributed_combine;
using costs::mst_broadcast;
using costs::mst_combine_to_one;
using costs::mst_gather;
using costs::mst_scatter;

// Stage cost callbacks specializing the DP per collective.
struct StageSet {
  // Long-vector stage-1 primitive within groups of d (live n bytes,
  // conflict c) and its matching stage-2 primitive.
  std::function<Cost(int, double, double)> stage1;
  std::function<Cost(int, double, double)> stage2;
  // Whole-(sub)group short-vector algorithm and long-vector pair.
  std::function<Cost(int, double, double)> inner_short;
  std::function<Cost(int, double, double)> inner_pair;
};

struct Partial {
  Cost cost;
  double seconds = 0.0;
  std::vector<int> dims;
  InnerAlg inner = InnerAlg::kShortVector;
};

class Dp {
 public:
  Dp(const StageSet& stages, const MachineParams& params, double n0)
      : stages_(stages), params_(params), n0_(n0) {}

  Partial solve(int p, std::int64_t c) {
    const auto key = std::make_pair(p, c);
    auto it = memo_.find(key);
    if (it != memo_.end()) return it->second;
    const double n = n0_ / static_cast<double>(c);
    const double cd = static_cast<double>(c);

    Partial best;
    best.cost = stages_.inner_short(p, n, cd);
    best.seconds = best.cost.seconds(params_);
    best.dims = {p};
    best.inner = InnerAlg::kShortVector;
    if (p > 1) {
      const Cost pair = stages_.inner_pair(p, n, cd);
      const double pair_s = pair.seconds(params_);
      if (pair_s < best.seconds) {
        best = Partial{pair, pair_s, {p}, InnerAlg::kScatterCollect};
      }
      for (std::int64_t d64 : divisors(p)) {
        const int d = static_cast<int>(d64);
        if (d < 2 || d >= p) continue;
        const Cost s1 = stages_.stage1(d, n, cd);
        const Cost s2 = stages_.stage2(d, n, cd);
        const Partial sub = solve(p / d, c * d);
        const Cost total = s1 + sub.cost + s2;
        const double total_s = total.seconds(params_);
        if (total_s < best.seconds) {
          best.cost = total;
          best.seconds = total_s;
          best.dims.assign(1, d);
          best.dims.insert(best.dims.end(), sub.dims.begin(), sub.dims.end());
          best.inner = sub.inner;
        }
      }
    }
    memo_.emplace(key, best);
    return best;
  }

 private:
  const StageSet& stages_;
  const MachineParams& params_;
  double n0_;
  std::map<std::pair<int, std::int64_t>, Partial> memo_;
};

OptimalHybrid run_dp(const StageSet& stages, int p, double nbytes,
                     const MachineParams& params) {
  INTERCOM_REQUIRE(p >= 1, "group size must be at least 1");
  INTERCOM_REQUIRE(nbytes >= 0.0, "vector length must be nonnegative");
  Dp dp(stages, params, nbytes);
  const Partial best = dp.solve(p, 1);
  OptimalHybrid result;
  result.strategy = HybridStrategy{best.dims, best.inner, false};
  result.cost = best.cost;
  result.seconds = best.seconds;
  return result;
}

}  // namespace

OptimalHybrid optimal_broadcast_hybrid(int p, double nbytes,
                                       const MachineParams& params) {
  StageSet stages;
  stages.stage1 = [](int d, double n, double c) {
    return mst_scatter(d, n, c);
  };
  stages.stage2 = [](int d, double n, double c) {
    return bucket_collect(d, n, c);
  };
  stages.inner_short = [](int d, double n, double c) {
    return mst_broadcast(d, n, c);
  };
  stages.inner_pair = [](int d, double n, double c) {
    return mst_scatter(d, n, c) + bucket_collect(d, n, c);
  };
  return run_dp(stages, p, nbytes, params);
}

OptimalHybrid optimal_combine_to_all_hybrid(int p, double nbytes,
                                            const MachineParams& params) {
  StageSet stages;
  stages.stage1 = [](int d, double n, double c) {
    return bucket_distributed_combine(d, n, c);
  };
  stages.stage2 = [](int d, double n, double c) {
    return bucket_collect(d, n, c);
  };
  stages.inner_short = [](int d, double n, double c) {
    return mst_combine_to_one(d, n, c) + mst_broadcast(d, n, c);
  };
  stages.inner_pair = [](int d, double n, double c) {
    return bucket_distributed_combine(d, n, c) + bucket_collect(d, n, c);
  };
  return run_dp(stages, p, nbytes, params);
}

}  // namespace intercom
