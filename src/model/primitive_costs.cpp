#include "intercom/model/primitive_costs.hpp"

#include <algorithm>

#include "intercom/util/error.hpp"
#include "intercom/util/factorization.hpp"

namespace intercom::costs {

namespace {
void check_args(int d, double nbytes) {
  INTERCOM_REQUIRE(d >= 1, "group size must be at least 1");
  INTERCOM_REQUIRE(nbytes >= 0.0, "vector length must be nonnegative");
}
}  // namespace

Cost mst_broadcast(int d, double nbytes, double conflict) {
  check_args(d, nbytes);
  const double steps = ceil_log2(d);
  return Cost{steps, steps * nbytes * conflict, 0.0, steps};
}

Cost mst_combine_to_one(int d, double nbytes, double conflict) {
  check_args(d, nbytes);
  const double steps = ceil_log2(d);
  return Cost{steps, steps * nbytes * conflict, steps * nbytes, steps};
}

Cost mst_scatter(int d, double nbytes, double conflict) {
  check_args(d, nbytes);
  const double steps = ceil_log2(d);
  const double frac = d > 1 ? static_cast<double>(d - 1) / d : 0.0;
  return Cost{steps, frac * nbytes * conflict, 0.0, steps};
}

Cost mst_gather(int d, double nbytes, double conflict) {
  return mst_scatter(d, nbytes, conflict);
}

Cost bucket_collect(int d, double nbytes, double conflict, int latency_steps) {
  check_args(d, nbytes);
  const double steps = latency_steps >= 0 ? latency_steps : d - 1;
  const double frac = d > 1 ? static_cast<double>(d - 1) / d : 0.0;
  return Cost{steps, frac * nbytes * conflict, 0.0, 1.0};
}

Cost bucket_distributed_combine(int d, double nbytes, double conflict,
                                int latency_steps) {
  Cost c = bucket_collect(d, nbytes, conflict, latency_steps);
  const double frac = d > 1 ? static_cast<double>(d - 1) / d : 0.0;
  c.gamma_bytes = frac * nbytes;
  return c;
}

Cost circulant_collect(int d, double nbytes, double conflict) {
  check_args(d, nbytes);
  Cost c;
  if (d <= 1) return c;
  const double block = nbytes / d;
  for (int dist = 1; dist < d; dist *= 2) {
    const double sk = std::min(dist, d - dist);
    c.alpha_terms += 1.0;
    c.beta_bytes += sk * sk * block * conflict;
    c.levels += 1.0;
  }
  return c;
}

Cost circulant_distributed_combine(int d, double nbytes, double conflict) {
  Cost c = circulant_collect(d, nbytes, conflict);
  const double frac = d > 1 ? static_cast<double>(d - 1) / d : 0.0;
  c.gamma_bytes = frac * nbytes;
  return c;
}

Cost short_vector_cost(Collective collective, int d, double nbytes) {
  switch (collective) {
    case Collective::kBroadcast:
      return mst_broadcast(d, nbytes);
    case Collective::kScatter:
      return mst_scatter(d, nbytes);
    case Collective::kGather:
      return mst_gather(d, nbytes);
    case Collective::kCombineToOne:
      return mst_combine_to_one(d, nbytes);
    case Collective::kCollect:
      // Gather followed by broadcast: 2*ceil(log p)*alpha + ~2*ceil(log p)*n*beta.
      return mst_gather(d, nbytes) + mst_broadcast(d, nbytes);
    case Collective::kDistributedCombine:
      return mst_combine_to_one(d, nbytes) + mst_scatter(d, nbytes);
    case Collective::kCombineToAll:
      return mst_combine_to_one(d, nbytes) + mst_broadcast(d, nbytes);
  }
  INTERCOM_REQUIRE(false, "unknown collective");
  return {};
}

Cost long_vector_cost(Collective collective, int d, double nbytes) {
  switch (collective) {
    case Collective::kBroadcast:
      return mst_scatter(d, nbytes) + bucket_collect(d, nbytes);
    case Collective::kScatter:
      return mst_scatter(d, nbytes);
    case Collective::kGather:
      return mst_gather(d, nbytes);
    case Collective::kCollect:
      return bucket_collect(d, nbytes);
    case Collective::kCombineToOne:
      return bucket_distributed_combine(d, nbytes) + mst_gather(d, nbytes);
    case Collective::kDistributedCombine:
      return bucket_distributed_combine(d, nbytes);
    case Collective::kCombineToAll:
      return bucket_distributed_combine(d, nbytes) + bucket_collect(d, nbytes);
  }
  INTERCOM_REQUIRE(false, "unknown collective");
  return {};
}

}  // namespace intercom::costs
