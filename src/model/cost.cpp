#include "intercom/model/cost.hpp"

#include <iomanip>
#include <sstream>

namespace intercom {

double Cost::seconds(const MachineParams& params) const {
  return alpha_terms * params.alpha + beta_bytes * params.beta +
         gamma_bytes * params.gamma + levels * params.per_level_overhead;
}

Cost& Cost::operator+=(const Cost& other) {
  alpha_terms += other.alpha_terms;
  beta_bytes += other.beta_bytes;
  gamma_bytes += other.gamma_bytes;
  levels += other.levels;
  return *this;
}

std::string Cost::to_string(double normalize_bytes) const {
  std::ostringstream os;
  os << std::setprecision(4) << std::defaultfloat;
  os << alpha_terms << "a";
  const double scale = normalize_bytes > 0.0 ? normalize_bytes : 1.0;
  os << " + " << beta_bytes / scale << (normalize_bytes > 0.0 ? "nb" : "b");
  if (gamma_bytes != 0.0) {
    os << " + " << gamma_bytes / scale << (normalize_bytes > 0.0 ? "ng" : "g");
  }
  return os.str();
}

}  // namespace intercom
