#include "intercom/model/machine_params.hpp"

namespace intercom {

MachineParams MachineParams::unit() {
  return MachineParams{1.0, 1.0, 1.0, 1.0, 0.0};
}

MachineParams MachineParams::paragon() {
  MachineParams p;
  p.alpha = 140e-6;
  p.beta = 35e-9;
  p.gamma = 25e-9;
  p.link_capacity = 2.0;
  p.per_level_overhead = 15e-6;
  return p;
}

MachineParams MachineParams::ipsc860() {
  MachineParams p;
  p.alpha = 75e-6;
  p.beta = 360e-9;  // ~2.8 MB/s links
  p.gamma = 80e-9;
  p.link_capacity = 1.0;
  p.per_level_overhead = 10e-6;
  return p;
}

MachineParams MachineParams::sunmos() {
  MachineParams p = paragon();
  p.alpha = 25e-6;             // lightweight-kernel message latency
  p.beta = 6e-9;               // ~170 MB/s effective under SUNMOS
  p.per_level_overhead = 3e-6;
  return p;
}

MachineParams MachineParams::delta() {
  MachineParams p;
  p.alpha = 160e-6;
  p.beta = 125e-9;  // ~8 MB/s point-to-point on the Delta
  p.gamma = 60e-9;
  p.link_capacity = 1.0;
  p.per_level_overhead = 15e-6;
  return p;
}

}  // namespace intercom
