#include "intercom/collective.hpp"

#include "intercom/util/error.hpp"

namespace intercom {

std::string to_string(Collective collective) {
  switch (collective) {
    case Collective::kBroadcast:
      return "broadcast";
    case Collective::kScatter:
      return "scatter";
    case Collective::kGather:
      return "gather";
    case Collective::kCollect:
      return "collect";
    case Collective::kCombineToOne:
      return "combine-to-one";
    case Collective::kCombineToAll:
      return "combine-to-all";
    case Collective::kDistributedCombine:
      return "distributed-combine";
  }
  INTERCOM_REQUIRE(false, "unknown collective");
  return {};
}

}  // namespace intercom
