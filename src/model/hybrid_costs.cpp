#include "intercom/model/hybrid_costs.hpp"

#include <cstddef>

#include "intercom/model/primitive_costs.hpp"
#include "intercom/util/error.hpp"

namespace intercom {

namespace {

using costs::bucket_collect;
using costs::bucket_distributed_combine;
using costs::mst_broadcast;
using costs::mst_combine_to_one;
using costs::mst_gather;
using costs::mst_scatter;

// Per-stage live vector length and conflict factor (see file comment of the
// header).  Stage indices are 0-based here; stage s corresponds to the
// paper's dimension s+1.
struct StageInfo {
  double nbytes = 0.0;
  double conflict = 1.0;
};

StageInfo stage_info(const HybridStrategy& s, std::size_t stage,
                     double nbytes) {
  double divisor = 1.0;
  for (std::size_t j = 0; j < stage; ++j) divisor *= s.dims[j];
  StageInfo info;
  info.nbytes = nbytes / divisor;
  if (!s.mesh_aligned) {
    // Linear array: stage-i groups are strided by the product of the earlier
    // dimensions, so that many groups interleave over the same links.
    info.conflict = divisor;
  } else if (stage == 0) {
    // Mesh-aligned: stage 1 runs within physical rows (contiguous, disjoint).
    info.conflict = 1.0;
  } else {
    // Later stages run within physical columns; only the interleave *within*
    // a column (the product of the earlier column dimensions) shares links.
    double col_divisor = 1.0;
    for (std::size_t j = 1; j < stage; ++j) col_divisor *= s.dims[j];
    info.conflict = col_divisor;
  }
  return info;
}

// Broadcast-shaped hybrids (root-based: distribute going in, reassemble
// going out).  `stage1` and `stage2` are the collective's long-vector
// primitives; `inner_short` its short-vector algorithm.
template <typename Stage1Fn, typename InnerFn, typename Stage2Fn>
Cost in_out_hybrid(const HybridStrategy& s, double nbytes, Stage1Fn stage1,
                   InnerFn inner_short, Stage2Fn stage2) {
  const std::size_t k = s.dims.size();
  Cost total;
  if (s.inner == InnerAlg::kShortVector) {
    for (std::size_t i = 0; i + 1 < k; ++i) {
      StageInfo si = stage_info(s, i, nbytes);
      total += stage1(s.dims[i], si.nbytes, si.conflict);
    }
    StageInfo si = stage_info(s, k - 1, nbytes);
    total += inner_short(s.dims[k - 1], si.nbytes, si.conflict);
    for (std::size_t i = k - 1; i-- > 0;) {
      StageInfo so = stage_info(s, i, nbytes);
      total += stage2(s.dims[i], so.nbytes, so.conflict);
    }
  } else {
    for (std::size_t i = 0; i < k; ++i) {
      StageInfo si = stage_info(s, i, nbytes);
      total += stage1(s.dims[i], si.nbytes, si.conflict);
    }
    for (std::size_t i = k; i-- > 0;) {
      StageInfo so = stage_info(s, i, nbytes);
      total += stage2(s.dims[i], so.nbytes, so.conflict);
    }
  }
  return total;
}

// Collect-shaped hybrids: stage i (i = 1..k) collects within groups of size
// d_i strided by d_1*...*d_{i-1}; each member enters the stage holding the
// contiguous run it assembled in the previous stage, so the live vector
// *grows* stage by stage: after stage i it is n * (d_1*...*d_i) / p.  The
// dims = {c, r} mesh-aligned case is the paper's Section 7.1 whole-mesh
// collect with (r + c - 2) alpha latency.
Cost collect_hybrid(const HybridStrategy& s, double nbytes) {
  const std::size_t k = s.dims.size();
  const double p = s.node_count();
  Cost total;
  double cum = 1.0;
  for (std::size_t i = 0; i < k; ++i) {
    const double conflict = stage_info(s, i, nbytes).conflict;
    cum *= s.dims[i];
    const double result_bytes = nbytes * cum / p;
    if (i == 0 && s.inner == InnerAlg::kShortVector) {
      // Short-vector collect: gather followed by MST broadcast (Section 5.1).
      total += mst_gather(s.dims[i], result_bytes, conflict);
      total += mst_broadcast(s.dims[i], result_bytes, conflict);
    } else {
      total += bucket_collect(s.dims[i], result_bytes, conflict);
    }
  }
  return total;
}

// Reduce-scatter-shaped hybrids: the exact mirror of collect_hybrid — stages
// run outermost first and the live vector *shrinks* stage by stage.
Cost distributed_combine_hybrid(const HybridStrategy& s, double nbytes) {
  const std::size_t k = s.dims.size();
  const double p = s.node_count();
  Cost total;
  for (std::size_t i = k; i-- > 0;) {
    const double conflict = stage_info(s, i, nbytes).conflict;
    double cum = 1.0;
    for (std::size_t j = 0; j <= i; ++j) cum *= s.dims[j];
    const double stage_bytes = nbytes * cum / p;
    if (i == 0 && s.inner == InnerAlg::kShortVector) {
      // Short-vector distributed combine: combine-to-one then scatter.
      total += mst_combine_to_one(s.dims[i], stage_bytes, conflict);
      total += mst_scatter(s.dims[i], stage_bytes, conflict);
    } else {
      total += bucket_distributed_combine(s.dims[i], stage_bytes, conflict);
    }
  }
  return total;
}

}  // namespace

Cost hybrid_cost(Collective collective, const HybridStrategy& strategy,
                 double nbytes) {
  INTERCOM_REQUIRE(!strategy.dims.empty(), "strategy must have dimensions");
  for (int d : strategy.dims) {
    INTERCOM_REQUIRE(d >= 1, "strategy dimensions must be positive");
  }
  const int p = strategy.node_count();
  if (strategy.inner == InnerAlg::kCirculant) {
    // The circulant algorithms are pure single-dimension strategies for the
    // all-to-all-shaped collectives; for everything else (and for hybrid
    // stagings) they do not apply — return a cost no selector will pick, so
    // the candidate set can carry them unconditionally without a special
    // case at every ranking site.
    if (strategy.dims.size() == 1) {
      switch (collective) {
        case Collective::kCollect:
          return costs::circulant_collect(p, nbytes);
        case Collective::kDistributedCombine:
          return costs::circulant_distributed_combine(p, nbytes);
        case Collective::kCombineToAll:
          return costs::circulant_distributed_combine(p, nbytes) +
                 costs::circulant_collect(p, nbytes);
        default:
          break;
      }
    }
    return Cost{1e30, 1e30, 0.0, 0.0};
  }
  switch (collective) {
    case Collective::kBroadcast:
      return in_out_hybrid(
          strategy, nbytes,
          [](int d, double n, double c) { return mst_scatter(d, n, c); },
          [](int d, double n, double c) { return mst_broadcast(d, n, c); },
          [](int d, double n, double c) { return bucket_collect(d, n, c); });
    case Collective::kCombineToOne:
      return in_out_hybrid(
          strategy, nbytes,
          [](int d, double n, double c) {
            return bucket_distributed_combine(d, n, c);
          },
          [](int d, double n, double c) {
            return mst_combine_to_one(d, n, c);
          },
          [](int d, double n, double c) { return mst_gather(d, n, c); });
    case Collective::kCombineToAll:
      return in_out_hybrid(
          strategy, nbytes,
          [](int d, double n, double c) {
            return bucket_distributed_combine(d, n, c);
          },
          [](int d, double n, double c) {
            return mst_combine_to_one(d, n, c) + mst_broadcast(d, n, c);
          },
          [](int d, double n, double c) { return bucket_collect(d, n, c); });
    case Collective::kCollect:
      return collect_hybrid(strategy, nbytes);
    case Collective::kDistributedCombine:
      return distributed_combine_hybrid(strategy, nbytes);
    case Collective::kScatter:
      return mst_scatter(p, nbytes);
    case Collective::kGather:
      return mst_gather(p, nbytes);
  }
  INTERCOM_REQUIRE(false, "unknown collective");
  return {};
}

}  // namespace intercom
