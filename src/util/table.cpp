#include "intercom/util/table.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "intercom/util/error.hpp"

namespace intercom {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  INTERCOM_REQUIRE(!header_.empty(), "table must have at least one column");
}

void TextTable::add_row(std::vector<std::string> row) {
  INTERCOM_REQUIRE(row.size() == header_.size(),
                   "row arity must match header arity");
  rows_.push_back(std::move(row));
}

void TextTable::print(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    os << "|";
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << ' ' << std::left << std::setw(static_cast<int>(width[c])) << row[c]
         << " |";
    }
    os << '\n';
  };
  print_row(header_);
  os << "|";
  for (std::size_t c = 0; c < header_.size(); ++c) {
    os << std::string(width[c] + 2, '-') << "|";
  }
  os << '\n';
  for (const auto& row : rows_) print_row(row);
}

void TextTable::print_csv(std::ostream& os) const {
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c > 0) os << ',';
      os << row[c];
    }
    os << '\n';
  };
  print_row(header_);
  for (const auto& row : rows_) print_row(row);
}

std::string format_seconds(double seconds) {
  std::ostringstream os;
  os << std::setprecision(4) << std::defaultfloat << seconds;
  return os.str();
}

std::string format_bytes(std::size_t bytes) {
  std::ostringstream os;
  if (bytes >= (1u << 20) && bytes % (1u << 20) == 0) {
    os << (bytes >> 20) << "M";
  } else if (bytes >= (1u << 10) && bytes % (1u << 10) == 0) {
    os << (bytes >> 10) << "K";
  } else {
    os << bytes;
  }
  return os.str();
}

}  // namespace intercom
