#include "intercom/util/factorization.hpp"

#include <algorithm>

#include "intercom/util/error.hpp"

namespace intercom {

std::vector<std::int64_t> prime_factors(std::int64_t n) {
  INTERCOM_REQUIRE(n >= 1, "prime_factors requires n >= 1");
  std::vector<std::int64_t> factors;
  for (std::int64_t d = 2; d * d <= n; ++d) {
    while (n % d == 0) {
      factors.push_back(d);
      n /= d;
    }
  }
  if (n > 1) factors.push_back(n);
  return factors;
}

std::vector<std::int64_t> divisors(std::int64_t n) {
  INTERCOM_REQUIRE(n >= 1, "divisors requires n >= 1");
  std::vector<std::int64_t> small;
  std::vector<std::int64_t> large;
  for (std::int64_t d = 1; d * d <= n; ++d) {
    if (n % d == 0) {
      small.push_back(d);
      if (d != n / d) large.push_back(n / d);
    }
  }
  small.insert(small.end(), large.rbegin(), large.rend());
  return small;
}

namespace {

void ordered_factorizations_rec(std::int64_t n, int k, std::int64_t min_factor,
                                std::vector<std::int64_t>& prefix,
                                std::vector<std::vector<std::int64_t>>& out) {
  if (k == 1) {
    if (n >= min_factor) {
      prefix.push_back(n);
      out.push_back(prefix);
      prefix.pop_back();
    }
    return;
  }
  for (std::int64_t d : divisors(n)) {
    if (d < min_factor) continue;
    // The remaining k-1 factors must each be >= min_factor, so the remaining
    // product must be at least min_factor^(k-1); pruning via d alone suffices
    // because the recursion rejects infeasible leaves.
    if (n / d < min_factor) continue;
    prefix.push_back(d);
    ordered_factorizations_rec(n / d, k - 1, min_factor, prefix, out);
    prefix.pop_back();
  }
}

}  // namespace

std::vector<std::vector<std::int64_t>> ordered_factorizations(
    std::int64_t n, int k, std::int64_t min_factor) {
  INTERCOM_REQUIRE(n >= 1, "ordered_factorizations requires n >= 1");
  INTERCOM_REQUIRE(k >= 1, "ordered_factorizations requires k >= 1");
  std::vector<std::vector<std::int64_t>> out;
  std::vector<std::int64_t> prefix;
  ordered_factorizations_rec(n, k, min_factor, prefix, out);
  return out;
}

std::vector<std::vector<std::int64_t>> all_ordered_factorizations(
    std::int64_t n, int max_k, std::int64_t min_factor) {
  INTERCOM_REQUIRE(max_k >= 1, "all_ordered_factorizations requires max_k >= 1");
  std::vector<std::vector<std::int64_t>> out;
  for (int k = 1; k <= max_k; ++k) {
    auto fk = ordered_factorizations(n, k, min_factor);
    out.insert(out.end(), fk.begin(), fk.end());
  }
  return out;
}

int ceil_log2(std::int64_t n) {
  INTERCOM_REQUIRE(n >= 1, "ceil_log2 requires n >= 1");
  int bits = 0;
  std::int64_t v = 1;
  while (v < n) {
    v <<= 1;
    ++bits;
  }
  return bits;
}

bool is_power_of_two(std::int64_t n) {
  return n >= 1 && (n & (n - 1)) == 0;
}

}  // namespace intercom
