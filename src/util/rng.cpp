#include "intercom/util/rng.hpp"

#include <cmath>

#include "intercom/util/error.hpp"

namespace intercom {

std::uint64_t Rng::next_u64() {
  std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

double Rng::next_double() {
  // 53 random bits into the mantissa.
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

std::int64_t Rng::next_in_range(std::int64_t lo, std::int64_t hi) {
  INTERCOM_REQUIRE(lo <= hi, "next_in_range requires lo <= hi");
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(next_u64() % span);
}

double Rng::next_exponential(double mean) {
  INTERCOM_REQUIRE(mean > 0.0, "next_exponential requires mean > 0");
  double u = next_double();
  // Guard against log(0).
  if (u <= 0.0) u = 0x1.0p-53;
  return -mean * std::log(u);
}

}  // namespace intercom
