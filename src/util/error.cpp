#include "intercom/util/error.hpp"

#include <sstream>

namespace intercom::detail {

void throw_error(const char* file, int line, const char* expr,
                 const std::string& message) {
  std::ostringstream os;
  os << message << " [" << expr << " failed at " << file << ":" << line << "]";
  throw Error(os.str());
}

}  // namespace intercom::detail
