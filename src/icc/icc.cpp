#include "intercom/icc/icc.hpp"

namespace intercom::icc {

namespace {

std::span<std::byte> bytes_of(void* buf, std::size_t nbytes) {
  return std::span<std::byte>(static_cast<std::byte*>(buf), nbytes);
}

}  // namespace

void icc_bcast(Communicator& comm, void* buf, std::size_t nbytes, int root) {
  comm.broadcast_bytes(bytes_of(buf, nbytes), 1, root);
}

void icc_gcolx(Communicator& comm, void* buf, std::size_t nbytes) {
  comm.collect_bytes(bytes_of(buf, nbytes), 1);
}

void icc_gather(Communicator& comm, void* buf, std::size_t nbytes, int root) {
  comm.gather_bytes(bytes_of(buf, nbytes), 1, root);
}

void icc_gscatter(Communicator& comm, void* buf, std::size_t nbytes,
                  int root) {
  comm.scatter_bytes(bytes_of(buf, nbytes), 1, root);
}

void icc_gdsum(Communicator& comm, double* x, std::size_t n) {
  comm.all_reduce_sum(std::span<double>(x, n));
}

void icc_gdhigh(Communicator& comm, double* x, std::size_t n) {
  comm.combine_to_all_bytes(
      std::as_writable_bytes(std::span<double>(x, n)), max_op<double>());
}

void icc_gdlow(Communicator& comm, double* x, std::size_t n) {
  comm.combine_to_all_bytes(
      std::as_writable_bytes(std::span<double>(x, n)), min_op<double>());
}

void icc_gisum(Communicator& comm, int* x, std::size_t n) {
  comm.all_reduce_sum(std::span<int>(x, n));
}

}  // namespace intercom::icc
