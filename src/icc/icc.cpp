#include "intercom/icc/icc.hpp"

namespace intercom::icc {

namespace {

std::span<std::byte> bytes_of(void* buf, std::size_t nbytes) {
  return std::span<std::byte>(static_cast<std::byte*>(buf), nbytes);
}

}  // namespace

void icc_bcast(Communicator& comm, void* buf, std::size_t nbytes, int root) {
  comm.broadcast_bytes(bytes_of(buf, nbytes), 1, root);
}

void icc_gcolx(Communicator& comm, void* buf, std::size_t nbytes) {
  comm.collect_bytes(bytes_of(buf, nbytes), 1);
}

void icc_gather(Communicator& comm, void* buf, std::size_t nbytes, int root) {
  comm.gather_bytes(bytes_of(buf, nbytes), 1, root);
}

void icc_gscatter(Communicator& comm, void* buf, std::size_t nbytes,
                  int root) {
  comm.scatter_bytes(bytes_of(buf, nbytes), 1, root);
}

void icc_gdsum(Communicator& comm, double* x, std::size_t n) {
  comm.all_reduce_sum(std::span<double>(x, n));
}

void icc_gdhigh(Communicator& comm, double* x, std::size_t n) {
  comm.combine_to_all_bytes(
      std::as_writable_bytes(std::span<double>(x, n)), max_op<double>());
}

void icc_gdlow(Communicator& comm, double* x, std::size_t n) {
  comm.combine_to_all_bytes(
      std::as_writable_bytes(std::span<double>(x, n)), min_op<double>());
}

void icc_gisum(Communicator& comm, int* x, std::size_t n) {
  comm.all_reduce_sum(std::span<int>(x, n));
}

void icc_abort(Communicator& comm, const char* reason) {
  comm.machine().transport().abort(reason == nullptr ? "" : reason);
}

std::shared_ptr<FaultInjector> icc_set_chaos(Multicomputer& machine,
                                             std::uint64_t seed, double drop,
                                             double duplicate, double reorder,
                                             double corrupt) {
  auto injector = std::make_shared<FaultInjector>(seed);
  FaultSpec spec;
  spec.drop = drop;
  spec.duplicate = duplicate;
  spec.reorder = reorder;
  spec.corrupt = corrupt;
  injector->set_default(spec);
  machine.set_fault_injector(injector);
  return injector;
}

void icc_set_reliable(Multicomputer& machine, bool on) {
  machine.set_reliable(on);
}

void icc_set_recv_timeout(Multicomputer& machine, long milliseconds) {
  machine.set_recv_timeout_ms(milliseconds);
}

}  // namespace intercom::icc
