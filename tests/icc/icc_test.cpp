// iCC calling-sequence shim tests (paper Section 10): the NX-style entry
// points drive the library's collectives.
#include <gtest/gtest.h>

#include "intercom/icc/icc.hpp"
#include "intercom/topo/submesh.hpp"

namespace intercom {
namespace {

TEST(IccTest, BcastBytes) {
  Multicomputer mc(Mesh2D(1, 5));
  mc.run_spmd([&](Node& node) {
    Communicator world = node.world();
    std::vector<char> buf(10, '\0');
    if (node.id() == 1) {
      for (int i = 0; i < 10; ++i) buf[static_cast<std::size_t>(i)] = char('a' + i);
    }
    icc::icc_bcast(world, buf.data(), buf.size(), 1);
    ASSERT_EQ(buf[0], 'a');
    ASSERT_EQ(buf[9], 'j');
  });
}

TEST(IccTest, GcolxCollects) {
  Multicomputer mc(Mesh2D(1, 4));
  mc.run_spmd([&](Node& node) {
    Communicator world = node.world();
    std::vector<char> buf(8, '?');
    const ElemRange piece = world.piece_of(8, world.rank());
    for (std::size_t i = piece.lo; i < piece.hi; ++i) {
      buf[i] = static_cast<char>('0' + world.rank());
    }
    icc::icc_gcolx(world, buf.data(), buf.size());
    ASSERT_EQ(std::string(buf.begin(), buf.end()), "00112233");
  });
}

TEST(IccTest, GdsumSumsDoubles) {
  Multicomputer mc(Mesh2D(2, 2));
  mc.run_spmd([&](Node& node) {
    Communicator world = node.world();
    std::vector<double> x{1.0 * node.id(), 2.0};
    icc::icc_gdsum(world, x.data(), x.size());
    ASSERT_DOUBLE_EQ(x[0], 6.0);
    ASSERT_DOUBLE_EQ(x[1], 8.0);
  });
}

TEST(IccTest, GdhighGdlow) {
  Multicomputer mc(Mesh2D(1, 4));
  mc.run_spmd([&](Node& node) {
    Communicator world = node.world();
    std::vector<double> hi{static_cast<double>(10 - node.id())};
    std::vector<double> lo{static_cast<double>(10 - node.id())};
    icc::icc_gdhigh(world, hi.data(), 1);
    icc::icc_gdlow(world, lo.data(), 1);
    ASSERT_DOUBLE_EQ(hi[0], 10.0);
    ASSERT_DOUBLE_EQ(lo[0], 7.0);
  });
}

TEST(IccTest, GisumSumsInts) {
  Multicomputer mc(Mesh2D(1, 3));
  mc.run_spmd([&](Node& node) {
    Communicator world = node.world();
    std::vector<int> x{node.id(), node.id() * 10};
    icc::icc_gisum(world, x.data(), x.size());
    ASSERT_EQ(x[0], 3);
    ASSERT_EQ(x[1], 30);
  });
}

TEST(IccTest, GatherScatterRoundTrip) {
  Multicomputer mc(Mesh2D(1, 3));
  mc.run_spmd([&](Node& node) {
    Communicator world = node.world();
    std::vector<char> buf(9, '.');
    if (node.id() == 0) {
      for (int i = 0; i < 9; ++i) buf[static_cast<std::size_t>(i)] = char('A' + i);
    }
    icc::icc_gscatter(world, buf.data(), buf.size(), 0);
    icc::icc_gather(world, buf.data(), buf.size(), 0);
    if (node.id() == 0) {
      ASSERT_EQ(std::string(buf.begin(), buf.end()), "ABCDEFGHI");
    }
  });
}

TEST(IccTest, GroupScopedCalls) {
  // The Section 9/10 combination: iCC calls against a group communicator.
  const Mesh2D mesh(2, 4);
  Multicomputer mc(mesh);
  mc.run_spmd([&](Node& node) {
    const int my_row = mesh.coord_of(node.id()).row;
    Communicator row = node.group(row_group(mesh, my_row));
    std::vector<double> x{1.0};
    icc::icc_gdsum(row, x.data(), 1);
    ASSERT_DOUBLE_EQ(x[0], 4.0);
  });
}

}  // namespace
}  // namespace intercom
