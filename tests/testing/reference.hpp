// Test utility: a single-threaded reference interpreter for schedules.
//
// Executes a Schedule's programs under rendezvous semantics (like the
// validator) while actually moving bytes between per-node buffers and
// applying an element-wise sum for combines.  Core-planner tests use this to
// check data correctness without spinning up the threaded runtime.
#pragma once

#include <cstring>
#include <map>
#include <span>
#include <vector>

#include "intercom/ir/schedule.hpp"
#include "intercom/util/error.hpp"

namespace intercom::testing {

/// Reference executor over element type T (combine = element-wise sum).
template <typename T>
class RefExec {
 public:
  explicit RefExec(const Schedule& schedule) : schedule_(&schedule) {
    for (const auto& prog : schedule.programs()) {
      auto& bufs = buffers_[prog.node];
      bufs.resize(prog.buffer_bytes.size());
      for (std::size_t b = 0; b < prog.buffer_bytes.size(); ++b) {
        bufs[b].resize(prog.buffer_bytes[b], std::byte{0});
      }
    }
  }

  /// Typed view of a node's user buffer (buffer 0).
  std::span<T> user(int node) {
    auto it = buffers_.find(node);
    INTERCOM_REQUIRE(it != buffers_.end() && !it->second.empty(),
                     "node has no user buffer in this schedule");
    auto& raw = it->second[0];
    return std::span<T>(reinterpret_cast<T*>(raw.data()),
                        raw.size() / sizeof(T));
  }

  bool participates(int node) const { return buffers_.contains(node); }

  /// Runs all programs to completion; throws on rendezvous deadlock.
  void run() {
    struct Cursor {
      const NodeProgram* prog;
      std::size_t pc = 0;
      bool send_done = false;
      bool recv_done = false;
      bool done() const { return pc >= prog->ops.size(); }
      const Op& op() const { return prog->ops[pc]; }
      bool complete() const {
        const Op& o = op();
        return (!o.has_send() || send_done) && (!o.has_recv() || recv_done);
      }
      void advance() {
        ++pc;
        send_done = recv_done = false;
      }
    };
    std::map<int, Cursor> cursors;
    for (const auto& prog : schedule_->programs()) {
      cursors[prog.node] = Cursor{&prog};
    }
    bool progress = true;
    while (progress) {
      progress = false;
      for (auto& [node, cur] : cursors) {
        while (!cur.done()) {
          const Op& op = cur.op();
          if (op.kind == OpKind::kCopy) {
            auto src = bytes(node, op.src);
            auto dst = bytes(node, op.dst);
            if (!src.empty()) std::memcpy(dst.data(), src.data(), src.size());
            cur.advance();
            progress = true;
            continue;
          }
          if (op.kind == OpKind::kCombine) {
            auto src = bytes(node, op.src);
            auto dst = bytes(node, op.dst);
            INTERCOM_REQUIRE(src.size() % sizeof(T) == 0,
                             "combine not element aligned");
            const std::size_t count = src.size() / sizeof(T);
            auto* s = reinterpret_cast<const T*>(src.data());
            auto* d = reinterpret_cast<T*>(dst.data());
            for (std::size_t i = 0; i < count; ++i) d[i] += s[i];
            cur.advance();
            progress = true;
            continue;
          }
          if (op.has_send() && !cur.send_done) {
            auto peer_it = cursors.find(op.peer);
            if (peer_it != cursors.end() && !peer_it->second.done()) {
              Cursor& peer = peer_it->second;
              const Op& pop = peer.op();
              if (pop.has_recv() && !peer.recv_done &&
                  pop.recv_peer() == node && pop.recv_tag() == op.tag &&
                  pop.dst.bytes == op.src.bytes) {
                auto src = bytes(node, op.src);
                auto dst = bytes(op.peer, pop.dst);
                if (!src.empty())
                  std::memcpy(dst.data(), src.data(), src.size());
                cur.send_done = true;
                peer.recv_done = true;
                if (peer.complete()) peer.advance();
                progress = true;
              }
            }
          }
          if (cur.complete()) {
            cur.advance();
            progress = true;
            continue;
          }
          break;
        }
      }
    }
    for (const auto& [node, cur] : cursors) {
      INTERCOM_REQUIRE(cur.done(), "reference execution deadlocked at node " +
                                       std::to_string(node));
    }
  }

 private:
  std::span<std::byte> bytes(int node, const BufSlice& slice) {
    auto& bufs = buffers_.at(node);
    INTERCOM_REQUIRE(
        slice.buffer >= 0 &&
            static_cast<std::size_t>(slice.buffer) < bufs.size(),
        "slice references undeclared buffer");
    auto& raw = bufs[static_cast<std::size_t>(slice.buffer)];
    INTERCOM_REQUIRE(slice.offset + slice.bytes <= raw.size(),
                     "slice exceeds buffer");
    return std::span<std::byte>(raw).subspan(slice.offset, slice.bytes);
  }

  const Schedule* schedule_;
  std::map<int, std::vector<std::vector<std::byte>>> buffers_;
};

}  // namespace intercom::testing
