#include "intercom/util/rng.hpp"

#include <gtest/gtest.h>

#include "intercom/util/error.hpp"

namespace intercom {
namespace {

TEST(RngTest, DeterministicForEqualSeeds) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.next_double();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, RangeIsInclusiveAndCovers) {
  Rng rng(11);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const std::int64_t v = rng.next_in_range(3, 6);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 6);
    saw_lo |= (v == 3);
    saw_hi |= (v == 6);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, RangeRejectsInvertedBounds) {
  Rng rng(5);
  EXPECT_THROW(rng.next_in_range(4, 3), Error);
}

TEST(RngTest, ExponentialMeanRoughlyMatches) {
  Rng rng(13);
  const double mean = 2.5;
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.next_exponential(mean);
    EXPECT_GE(v, 0.0);
    sum += v;
  }
  EXPECT_NEAR(sum / n, mean, 0.05);
}

TEST(RngTest, ExponentialRejectsNonPositiveMean) {
  Rng rng(5);
  EXPECT_THROW(rng.next_exponential(0.0), Error);
  EXPECT_THROW(rng.next_exponential(-1.0), Error);
}

}  // namespace
}  // namespace intercom
