#include "intercom/util/error.hpp"

#include <gtest/gtest.h>

namespace intercom {
namespace {

TEST(ErrorTest, RequireThrowsWithMessageAndLocation) {
  try {
    INTERCOM_REQUIRE(1 == 2, "numbers disagree");
    FAIL() << "expected intercom::Error";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("numbers disagree"), std::string::npos);
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
    EXPECT_NE(what.find("error_test.cpp"), std::string::npos);
  }
}

TEST(ErrorTest, RequirePassesSilently) {
  EXPECT_NO_THROW(INTERCOM_REQUIRE(true, "never shown"));
}

TEST(ErrorTest, CheckThrowsOnViolation) {
  EXPECT_THROW(INTERCOM_CHECK(false), Error);
  EXPECT_NO_THROW(INTERCOM_CHECK(true));
}

TEST(ErrorTest, ErrorIsARuntimeError) {
  EXPECT_THROW(
      { throw Error("boom"); }, std::runtime_error);
}

}  // namespace
}  // namespace intercom
