#include "intercom/util/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "intercom/util/error.hpp"

namespace intercom {
namespace {

TEST(TextTableTest, PrintsAlignedColumns) {
  TextTable t({"op", "time"});
  t.add_row({"broadcast", "0.0013"});
  t.add_row({"collect", "0.0035"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("| op        | time   |"), std::string::npos);
  EXPECT_NE(out.find("| broadcast | 0.0013 |"), std::string::npos);
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(TextTableTest, CsvRendering) {
  TextTable t({"a", "b"});
  t.add_row({"1", "2"});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "a,b\n1,2\n");
}

TEST(TextTableTest, RejectsArityMismatch) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), Error);
}

TEST(TextTableTest, RejectsEmptyHeader) {
  EXPECT_THROW(TextTable({}), Error);
}

TEST(FormatBytesTest, HumanReadableLabels) {
  EXPECT_EQ(format_bytes(8), "8");
  EXPECT_EQ(format_bytes(1023), "1023");
  EXPECT_EQ(format_bytes(1024), "1K");
  EXPECT_EQ(format_bytes(65536), "64K");
  EXPECT_EQ(format_bytes(1u << 20), "1M");
  EXPECT_EQ(format_bytes(3u << 20), "3M");
}

TEST(FormatSecondsTest, FourSignificantDigits) {
  EXPECT_EQ(format_seconds(0.0013), "0.0013");
  EXPECT_EQ(format_seconds(12.3456), "12.35");
}

}  // namespace
}  // namespace intercom
