#include "intercom/util/factorization.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "intercom/util/error.hpp"

namespace intercom {
namespace {

TEST(PrimeFactorsTest, SmallValues) {
  EXPECT_TRUE(prime_factors(1).empty());
  EXPECT_EQ(prime_factors(2), (std::vector<std::int64_t>{2}));
  EXPECT_EQ(prime_factors(12), (std::vector<std::int64_t>{2, 2, 3}));
  EXPECT_EQ(prime_factors(30), (std::vector<std::int64_t>{2, 3, 5}));
  EXPECT_EQ(prime_factors(97), (std::vector<std::int64_t>{97}));
  EXPECT_EQ(prime_factors(512), std::vector<std::int64_t>(9, 2));
}

TEST(PrimeFactorsTest, ProductReconstructsInput) {
  for (std::int64_t n = 1; n <= 2000; ++n) {
    auto f = prime_factors(n);
    std::int64_t prod = 1;
    for (auto v : f) prod *= v;
    EXPECT_EQ(prod, n) << "n = " << n;
  }
}

TEST(PrimeFactorsTest, RejectsNonPositive) {
  EXPECT_THROW(prime_factors(0), Error);
  EXPECT_THROW(prime_factors(-4), Error);
}

TEST(DivisorsTest, KnownValues) {
  EXPECT_EQ(divisors(1), (std::vector<std::int64_t>{1}));
  EXPECT_EQ(divisors(12), (std::vector<std::int64_t>{1, 2, 3, 4, 6, 12}));
  EXPECT_EQ(divisors(30), (std::vector<std::int64_t>{1, 2, 3, 5, 6, 10, 15, 30}));
  EXPECT_EQ(divisors(49), (std::vector<std::int64_t>{1, 7, 49}));
}

TEST(DivisorsTest, SortedAndDividing) {
  for (std::int64_t n : {36, 450, 512, 97}) {
    auto ds = divisors(n);
    EXPECT_TRUE(std::is_sorted(ds.begin(), ds.end()));
    for (auto d : ds) EXPECT_EQ(n % d, 0);
  }
}

TEST(OrderedFactorizationsTest, TwelveIntoTwo) {
  auto f = ordered_factorizations(12, 2);
  std::vector<std::vector<std::int64_t>> expect{
      {2, 6}, {3, 4}, {4, 3}, {6, 2}};
  EXPECT_EQ(f, expect);
}

TEST(OrderedFactorizationsTest, ThirtyIntoThree) {
  auto f = ordered_factorizations(30, 3);
  // 30 = 2*3*5 in every order: 3! = 6 orderings.
  EXPECT_EQ(f.size(), 6u);
  for (const auto& dims : f) {
    std::int64_t prod = 1;
    for (auto d : dims) {
      prod *= d;
      EXPECT_GE(d, 2);
    }
    EXPECT_EQ(prod, 30);
  }
}

TEST(OrderedFactorizationsTest, PrimeHasOnlyTrivial) {
  EXPECT_EQ(ordered_factorizations(31, 1),
            (std::vector<std::vector<std::int64_t>>{{31}}));
  EXPECT_TRUE(ordered_factorizations(31, 2).empty());
}

TEST(AllOrderedFactorizationsTest, CountsFor30) {
  // k=1: {30}; k=2: (2,15),(3,10),(5,6),(6,5),(10,3),(15,2); k=3: 6 orderings.
  auto f = all_ordered_factorizations(30, 3);
  EXPECT_EQ(f.size(), 1u + 6u + 6u);
}

TEST(AllOrderedFactorizationsTest, ProductsAlwaysMatch) {
  for (std::int64_t n : {8, 24, 450, 512}) {
    for (const auto& dims : all_ordered_factorizations(n, 4)) {
      std::int64_t prod = 1;
      for (auto d : dims) prod *= d;
      EXPECT_EQ(prod, n);
    }
  }
}

TEST(CeilLog2Test, KnownValues) {
  EXPECT_EQ(ceil_log2(1), 0);
  EXPECT_EQ(ceil_log2(2), 1);
  EXPECT_EQ(ceil_log2(3), 2);
  EXPECT_EQ(ceil_log2(4), 2);
  EXPECT_EQ(ceil_log2(5), 3);
  EXPECT_EQ(ceil_log2(30), 5);   // the paper's p = 30 example
  EXPECT_EQ(ceil_log2(512), 9);  // the paper's 16 x 32 Paragon partition
  EXPECT_EQ(ceil_log2(450), 9);  // the paper's 15 x 30 partition
}

TEST(IsPowerOfTwoTest, Classification) {
  EXPECT_TRUE(is_power_of_two(1));
  EXPECT_TRUE(is_power_of_two(2));
  EXPECT_TRUE(is_power_of_two(512));
  EXPECT_FALSE(is_power_of_two(0));
  EXPECT_FALSE(is_power_of_two(3));
  EXPECT_FALSE(is_power_of_two(30));
}

TEST(CeilDivTest, Basics) {
  EXPECT_EQ(ceil_div(0, 4), 0);
  EXPECT_EQ(ceil_div(1, 4), 1);
  EXPECT_EQ(ceil_div(4, 4), 1);
  EXPECT_EQ(ceil_div(5, 4), 2);
}

}  // namespace
}  // namespace intercom
