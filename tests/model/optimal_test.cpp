// Exact optimal-hybrid DP tests: consistency with the enumeration planner,
// correctness of the reconstructed strategies, and the regimes where deeper
// hybrids pay.
#include <gtest/gtest.h>

#include "intercom/core/planner.hpp"
#include "intercom/ir/validate.hpp"
#include "intercom/model/hybrid_costs.hpp"
#include "intercom/model/optimal.hpp"

namespace intercom {
namespace {

TEST(OptimalTest, TrivialGroup) {
  const auto best =
      optimal_broadcast_hybrid(1, 100.0, MachineParams::paragon());
  EXPECT_DOUBLE_EQ(best.seconds, 0.0);
  EXPECT_EQ(best.strategy.dims, std::vector<int>{1});
}

TEST(OptimalTest, ReconstructedStrategyCostMatches) {
  // The DP's claimed cost must equal hybrid_cost() evaluated on the
  // reconstructed strategy — the two formulations price stages identically.
  const MachineParams params = MachineParams::paragon();
  for (int p : {8, 12, 30, 64, 512}) {
    for (double n : {8.0, 4096.0, 1048576.0}) {
      const auto best = optimal_broadcast_hybrid(p, n, params);
      const double direct =
          hybrid_cost(Collective::kBroadcast, best.strategy, n)
              .seconds(params);
      EXPECT_NEAR(best.seconds, direct, direct * 1e-12 + 1e-15)
          << "p=" << p << " n=" << n << " " << best.strategy.label();
    }
  }
}

TEST(OptimalTest, NeverWorseThanEnumeration) {
  const MachineParams params = MachineParams::paragon();
  const Planner planner(params);
  for (int p : {30, 64, 120, 512}) {
    const Group g = Group::contiguous(p);
    for (std::size_t n : {8u, 1u << 12, 1u << 15, 1u << 20}) {
      const auto strat = planner.select_strategy(Collective::kBroadcast, g, n);
      const double enumerated =
          planner.predict(Collective::kBroadcast, strat, n).seconds(params);
      const auto best =
          optimal_broadcast_hybrid(p, static_cast<double>(n), params);
      EXPECT_LE(best.seconds, enumerated * (1.0 + 1e-12))
          << "p=" << p << " n=" << n;
    }
  }
}

TEST(OptimalTest, MatchesEnumerationAtTheExtremes) {
  // For very short and very long vectors the optimum is a pure algorithm,
  // which the depth-3 enumeration certainly contains.
  const MachineParams params = MachineParams::paragon();
  const Planner planner(params);
  const Group g = Group::contiguous(30);
  for (std::size_t n : {8u, 1u << 22}) {
    const auto strat = planner.select_strategy(Collective::kBroadcast, g, n);
    const double enumerated =
        planner.predict(Collective::kBroadcast, strat, n).seconds(params);
    const auto best =
        optimal_broadcast_hybrid(30, static_cast<double>(n), params);
    EXPECT_NEAR(best.seconds, enumerated, enumerated * 1e-12);
  }
}

TEST(OptimalTest, BroadcastDepth3EnumerationIsCertifiedOptimal) {
  // Finding: for broadcast on a linear array, extra depth adds beta (every
  // scatter/collect level contributes ~2((d-1)/d) n beta after the conflict
  // cancellation) and only trims alpha, so the exact optimum never needs
  // more than three dimensions on this grid — the DP certifies the
  // enumeration-based planner.
  const MachineParams params = MachineParams::paragon();
  const Planner planner(params);
  const Group g = Group::contiguous(512);
  for (std::size_t n = 1 << 8; n <= (1u << 20); n *= 2) {
    const auto strat = planner.select_strategy(Collective::kBroadcast, g, n);
    const double enumerated =
        planner.predict(Collective::kBroadcast, strat, n).seconds(params);
    const auto best =
        optimal_broadcast_hybrid(512, static_cast<double>(n), params);
    EXPECT_NEAR(best.seconds, enumerated, enumerated * 1e-12) << "n=" << n;
  }
}

TEST(OptimalTest, DeepHybridsWinForShortAllreduce) {
  // Finding: for combine-to-all the optimum at short/medium lengths is the
  // all-2 factorization of depth log2(p) — recursive halving + recursive
  // doubling, the algorithm modern MPI libraries use — which the depth-3
  // enumeration cannot express.
  const MachineParams params = MachineParams::paragon();
  const Planner planner(params);
  const Group g = Group::contiguous(512);
  const auto best = optimal_combine_to_all_hybrid(512, 4096.0, params);
  EXPECT_EQ(best.strategy.dims, std::vector<int>(9, 2));
  const auto strat =
      planner.select_strategy(Collective::kCombineToAll, g, 4096);
  const double enumerated =
      planner.predict(Collective::kCombineToAll, strat, 4096).seconds(params);
  EXPECT_LT(best.seconds, enumerated * 0.85);
}

TEST(OptimalTest, OptimalStrategiesPlanAndValidate) {
  // Any strategy the DP reconstructs must be executable.
  const MachineParams params = MachineParams::paragon();
  const Planner planner(params);
  for (int p : {12, 30, 64}) {
    for (double n : {512.0, 65536.0}) {
      const auto best = optimal_broadcast_hybrid(p, n, params);
      const Schedule s = planner.plan_with_strategy(
          Collective::kBroadcast, Group::contiguous(p),
          static_cast<std::size_t>(n), 1, 0, best.strategy);
      EXPECT_TRUE(validate(s).ok) << best.strategy.label();
    }
  }
}

TEST(OptimalTest, CombineToAllDp) {
  const MachineParams params = MachineParams::paragon();
  const auto best = optimal_combine_to_all_hybrid(64, 4096.0, params);
  const double direct =
      hybrid_cost(Collective::kCombineToAll, best.strategy, 4096.0)
          .seconds(params);
  EXPECT_NEAR(best.seconds, direct, direct * 1e-12);
  // Never worse than the enumerated choice.
  const Planner planner(params);
  const auto strat = planner.select_strategy(Collective::kCombineToAll,
                                             Group::contiguous(64), 4096);
  EXPECT_LE(best.seconds,
            planner.predict(Collective::kCombineToAll, strat, 4096)
                    .seconds(params) *
                (1.0 + 1e-12));
}

TEST(OptimalTest, PrimeGroupsDegenerate) {
  const auto best =
      optimal_broadcast_hybrid(31, 4096.0, MachineParams::paragon());
  EXPECT_EQ(best.strategy.dims, std::vector<int>{31});
}

}  // namespace
}  // namespace intercom
