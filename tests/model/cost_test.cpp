#include "intercom/model/cost.hpp"

#include <gtest/gtest.h>

namespace intercom {
namespace {

TEST(CostTest, SecondsIsDotProductWithParams) {
  MachineParams p;
  p.alpha = 2.0;
  p.beta = 3.0;
  p.gamma = 5.0;
  p.per_level_overhead = 7.0;
  const Cost c{1.0, 10.0, 100.0, 2.0};
  EXPECT_DOUBLE_EQ(c.seconds(p), 2.0 + 30.0 + 500.0 + 14.0);
}

TEST(CostTest, AdditionAccumulatesAllTerms) {
  const Cost a{1.0, 2.0, 3.0, 4.0};
  const Cost b{10.0, 20.0, 30.0, 40.0};
  const Cost c = a + b;
  EXPECT_DOUBLE_EQ(c.alpha_terms, 11.0);
  EXPECT_DOUBLE_EQ(c.beta_bytes, 22.0);
  EXPECT_DOUBLE_EQ(c.gamma_bytes, 33.0);
  EXPECT_DOUBLE_EQ(c.levels, 44.0);
}

TEST(CostTest, ToStringNormalization) {
  const Cost c{6.0, 150.0, 0.0, 0.0};
  // Table 2 presentation: with n = 30 bytes the beta numerator prints as
  // the coefficient over 30.
  EXPECT_EQ(c.to_string(30.0), "6a + 5nb");
  EXPECT_EQ(c.to_string(), "6a + 150b");
}

TEST(MachineParamsTest, UnitPreset) {
  const MachineParams u = MachineParams::unit();
  EXPECT_DOUBLE_EQ(u.alpha, 1.0);
  EXPECT_DOUBLE_EQ(u.beta, 1.0);
  EXPECT_DOUBLE_EQ(u.gamma, 1.0);
  EXPECT_DOUBLE_EQ(u.per_level_overhead, 0.0);
}

TEST(MachineParamsTest, ParagonPresetMatchesBackDerivation) {
  const MachineParams p = MachineParams::paragon();
  // Derived in DESIGN.md from Table 3: 8-byte broadcast ~ 9 alpha ~ 1.3 ms,
  // 1 MB broadcast ~ 2 n beta ~ 0.075 s.
  EXPECT_NEAR(9 * p.alpha, 1.3e-3, 0.4e-3);
  EXPECT_NEAR(2.0 * (1 << 20) * p.beta, 0.075, 0.02);
  EXPECT_GT(p.link_capacity, 1.0);  // Section 7.1 excess link bandwidth
  EXPECT_GT(p.per_level_overhead, 0.0);
}

TEST(MachineParamsTest, DeltaSlowerThanParagon) {
  const MachineParams d = MachineParams::delta();
  const MachineParams p = MachineParams::paragon();
  EXPECT_GT(d.beta, p.beta);
  EXPECT_GE(d.alpha, p.alpha);
}

}  // namespace
}  // namespace intercom
