// Reproduction of the paper's Table 2: "Some choices of hybrids and their
// expense when broadcasting on a linear array with 30 nodes."
//
// With n = 30 bytes and unit parameters, Cost.beta_bytes equals the
// numerator of the paper's (x/30) n beta presentation.  Every legible row of
// Table 2 is checked exactly.  The row the scan prints as
// "(3x10, SMC) = 16a + (240/30) n b" is inconsistent with the formula that
// reproduces all other rows (it gives 8a + (160/30) n b) and is attributed
// to OCR damage; see DESIGN.md.
#include "intercom/model/hybrid_costs.hpp"

#include <gtest/gtest.h>

#include "intercom/model/primitive_costs.hpp"

namespace intercom {
namespace {

Cost bcast30(const std::vector<int>& dims, InnerAlg inner) {
  return hybrid_cost(Collective::kBroadcast,
                     HybridStrategy{dims, inner, false}, 30.0);
}

TEST(Table2Test, PureMst_1x30_M) {
  const Cost c = bcast30({30}, InnerAlg::kShortVector);
  EXPECT_DOUBLE_EQ(c.alpha_terms, 5.0);
  EXPECT_NEAR(c.beta_bytes, 150.0, 1e-9);
}

TEST(Table2Test, Smc_2x15) {
  const Cost c = bcast30({2, 15}, InnerAlg::kShortVector);
  EXPECT_DOUBLE_EQ(c.alpha_terms, 6.0);
  EXPECT_NEAR(c.beta_bytes, 150.0, 1e-9);
}

TEST(Table2Test, Ssmcc_2x3x5) {
  const Cost c = bcast30({2, 3, 5}, InnerAlg::kShortVector);
  EXPECT_DOUBLE_EQ(c.alpha_terms, 9.0);
  EXPECT_NEAR(c.beta_bytes, 160.0, 1e-9);
}

TEST(Table2Test, Smc_3x10_FormulaValue) {
  const Cost c = bcast30({3, 10}, InnerAlg::kShortVector);
  EXPECT_DOUBLE_EQ(c.alpha_terms, 8.0);
  EXPECT_NEAR(c.beta_bytes, 160.0, 1e-9);
}

TEST(Table2Test, Sscc_3x10) {
  const Cost c = bcast30({3, 10}, InnerAlg::kScatterCollect);
  EXPECT_DOUBLE_EQ(c.alpha_terms, 17.0);
  EXPECT_NEAR(c.beta_bytes, 94.0, 1e-9);
}

TEST(Table2Test, Sscc_10x3) {
  const Cost c = bcast30({10, 3}, InnerAlg::kScatterCollect);
  EXPECT_DOUBLE_EQ(c.alpha_terms, 17.0);
  EXPECT_NEAR(c.beta_bytes, 94.0, 1e-9);
}

TEST(Table2Test, Sscc_2x15) {
  const Cost c = bcast30({2, 15}, InnerAlg::kScatterCollect);
  EXPECT_DOUBLE_EQ(c.alpha_terms, 20.0);
  EXPECT_NEAR(c.beta_bytes, 86.0, 1e-9);
}

TEST(Table2Test, Sscc_5x6) {
  const Cost c = bcast30({5, 6}, InnerAlg::kScatterCollect);
  EXPECT_DOUBLE_EQ(c.alpha_terms, 15.0);
  EXPECT_NEAR(c.beta_bytes, 98.0, 1e-9);
}

TEST(Table2Test, Sscc_6x5) {
  const Cost c = bcast30({6, 5}, InnerAlg::kScatterCollect);
  EXPECT_DOUBLE_EQ(c.alpha_terms, 15.0);
  EXPECT_NEAR(c.beta_bytes, 98.0, 1e-9);
}

TEST(Table2Test, PureScatterCollectMatchesSection52) {
  // (1x30, SC) must equal the Section 5.2 long-vector broadcast cost.
  const Cost hybrid = bcast30({30}, InnerAlg::kScatterCollect);
  const Cost composed =
      costs::long_vector_cost(Collective::kBroadcast, 30, 30.0);
  EXPECT_DOUBLE_EQ(hybrid.alpha_terms, composed.alpha_terms);
  EXPECT_DOUBLE_EQ(hybrid.beta_bytes, composed.beta_bytes);
}

TEST(Table2Test, RowsOrderedByBetaTradeLatency) {
  // The paper lists hybrids "in increasing order of the beta term ... at a
  // cost of higher latency": SSCC variants have smaller beta but more alpha
  // than pure MST.
  const Cost mst = bcast30({30}, InnerAlg::kShortVector);
  const Cost sscc = bcast30({2, 15}, InnerAlg::kScatterCollect);
  EXPECT_LT(sscc.beta_bytes, mst.beta_bytes);
  EXPECT_GT(sscc.alpha_terms, mst.alpha_terms);
}

// ---- mesh-aligned strategies (Section 7.1) --------------------------------

TEST(MeshAlignedTest, CollectOn16x32HasRcMinus2Latency) {
  const HybridStrategy s{{32, 16}, InnerAlg::kScatterCollect, true};
  const Cost c = hybrid_cost(Collective::kCollect, s, 512.0);
  EXPECT_DOUBLE_EQ(c.alpha_terms, 31.0 + 15.0);  // (r + c - 2) startups
  // Beta within ~7% of the single-ring optimum (p-1)/p * n.
  EXPECT_LT(c.beta_bytes, 512.0 * 1.05);
  EXPECT_GT(c.beta_bytes, 511.0 * 511.0 / 512.0 / 511.0 * 0.9);
}

TEST(MeshAlignedTest, NoConflictPenaltyOnStage2) {
  // Same dims, mesh-aligned vs linear array: the linear-array version pays
  // interleaved-subgroup conflicts in its beta term.
  const HybridStrategy mesh{{32, 16}, InnerAlg::kShortVector, true};
  const HybridStrategy line{{32, 16}, InnerAlg::kShortVector, false};
  const Cost cm = hybrid_cost(Collective::kBroadcast, mesh, 1 << 20);
  const Cost cl = hybrid_cost(Collective::kBroadcast, line, 1 << 20);
  EXPECT_LT(cm.beta_bytes, cl.beta_bytes);
  EXPECT_DOUBLE_EQ(cm.alpha_terms, cl.alpha_terms);
}

TEST(MeshAlignedTest, ThreeLevelColumnSplitConflicts) {
  // dims {c, r1, r2}: stage 3 interleaves r1 subgroups within each column.
  const HybridStrategy s{{32, 4, 4}, InnerAlg::kShortVector, true};
  const Cost c = hybrid_cost(Collective::kBroadcast, s, 512.0);
  // Scatter stage 2 (within columns, conflict 1): ((4-1)/4) * 16 bytes-per-col
  // ... full check: just assert it is strictly cheaper than the linear-array
  // interpretation, which multiplies stage 2/3 by 32 and 128.
  const HybridStrategy line{{32, 4, 4}, InnerAlg::kShortVector, false};
  EXPECT_LT(c.beta_bytes,
            hybrid_cost(Collective::kBroadcast, line, 512.0).beta_bytes);
}

// ---- generalization to the other collectives ------------------------------

TEST(HybridCostTest, AllReduceHybridReducesToComposedForms) {
  const HybridStrategy mst{{16}, InnerAlg::kShortVector, false};
  const Cost c = hybrid_cost(Collective::kCombineToAll, mst, 64.0);
  const Cost ref = costs::short_vector_cost(Collective::kCombineToAll, 16, 64.0);
  EXPECT_DOUBLE_EQ(c.alpha_terms, ref.alpha_terms);
  EXPECT_DOUBLE_EQ(c.beta_bytes, ref.beta_bytes);
  EXPECT_DOUBLE_EQ(c.gamma_bytes, ref.gamma_bytes);
}

TEST(HybridCostTest, CollectPureRingMatchesBucketCost) {
  const HybridStrategy ring{{30}, InnerAlg::kScatterCollect, false};
  const Cost c = hybrid_cost(Collective::kCollect, ring, 30.0);
  EXPECT_DOUBLE_EQ(c.alpha_terms, 29.0);
  EXPECT_NEAR(c.beta_bytes, 29.0, 1e-9);
}

TEST(HybridCostTest, DistributedCombineMirrorsCollect) {
  const HybridStrategy s{{4, 8}, InnerAlg::kScatterCollect, false};
  const Cost collect = hybrid_cost(Collective::kCollect, s, 4096.0);
  const Cost rs = hybrid_cost(Collective::kDistributedCombine, s, 4096.0);
  EXPECT_DOUBLE_EQ(collect.alpha_terms, rs.alpha_terms);
  EXPECT_NEAR(collect.beta_bytes, rs.beta_bytes, 1e-9);
  EXPECT_GT(rs.gamma_bytes, 0.0);
}

TEST(HybridCostTest, ScatterIgnoresStaging) {
  const HybridStrategy staged{{4, 8}, InnerAlg::kScatterCollect, false};
  const Cost c = hybrid_cost(Collective::kScatter, staged, 1024.0);
  const Cost ref = costs::mst_scatter(32, 1024.0);
  EXPECT_DOUBLE_EQ(c.alpha_terms, ref.alpha_terms);
  EXPECT_DOUBLE_EQ(c.beta_bytes, ref.beta_bytes);
}

}  // namespace
}  // namespace intercom
