#include "intercom/model/primitive_costs.hpp"

#include <gtest/gtest.h>

#include "intercom/util/error.hpp"

namespace intercom {
namespace {

using namespace intercom::costs;

// Section 4.1: MST broadcast on d nodes costs ceil(log2 d)(alpha + n beta).
TEST(PrimitiveCostsTest, MstBroadcastFormula) {
  const Cost c = mst_broadcast(30, 120.0);
  EXPECT_DOUBLE_EQ(c.alpha_terms, 5.0);
  EXPECT_DOUBLE_EQ(c.beta_bytes, 5.0 * 120.0);
  EXPECT_DOUBLE_EQ(c.gamma_bytes, 0.0);
}

// Section 4.1: combine-to-one adds n gamma per stage.
TEST(PrimitiveCostsTest, MstCombineToOneFormula) {
  const Cost c = mst_combine_to_one(8, 100.0);
  EXPECT_DOUBLE_EQ(c.alpha_terms, 3.0);
  EXPECT_DOUBLE_EQ(c.beta_bytes, 300.0);
  EXPECT_DOUBLE_EQ(c.gamma_bytes, 300.0);
}

// Section 4.1: scatter sends only what lands in the other half each stage.
TEST(PrimitiveCostsTest, MstScatterFormula) {
  const Cost c = mst_scatter(4, 100.0);
  EXPECT_DOUBLE_EQ(c.alpha_terms, 2.0);
  EXPECT_DOUBLE_EQ(c.beta_bytes, 75.0);  // (d-1)/d * n
}

TEST(PrimitiveCostsTest, GatherMatchesScatter) {
  const Cost s = mst_scatter(30, 1000.0);
  const Cost g = mst_gather(30, 1000.0);
  EXPECT_DOUBLE_EQ(s.alpha_terms, g.alpha_terms);
  EXPECT_DOUBLE_EQ(s.beta_bytes, g.beta_bytes);
}

// Section 4.2: bucket collect costs (p-1) alpha + ((p-1)/p) n beta.
TEST(PrimitiveCostsTest, BucketCollectFormula) {
  const Cost c = bucket_collect(30, 300.0);
  EXPECT_DOUBLE_EQ(c.alpha_terms, 29.0);
  EXPECT_DOUBLE_EQ(c.beta_bytes, 290.0);
}

TEST(PrimitiveCostsTest, BucketCollectLatencyOverride) {
  // Section 7.1: on an r x c mesh the bucket latency drops to (r + c - 2).
  const Cost c = bucket_collect(512, 512.0, 1.0, 16 + 32 - 2);
  EXPECT_DOUBLE_EQ(c.alpha_terms, 46.0);
}

TEST(PrimitiveCostsTest, BucketDistributedCombineAddsGamma) {
  const Cost c = bucket_distributed_combine(10, 100.0);
  EXPECT_DOUBLE_EQ(c.alpha_terms, 9.0);
  EXPECT_DOUBLE_EQ(c.beta_bytes, 90.0);
  EXPECT_DOUBLE_EQ(c.gamma_bytes, 90.0);
}

TEST(PrimitiveCostsTest, ConflictFactorScalesBetaOnly) {
  const Cost base = mst_broadcast(8, 100.0, 1.0);
  const Cost shared = mst_broadcast(8, 100.0, 4.0);
  EXPECT_DOUBLE_EQ(shared.alpha_terms, base.alpha_terms);
  EXPECT_DOUBLE_EQ(shared.beta_bytes, 4.0 * base.beta_bytes);
}

TEST(PrimitiveCostsTest, SingleNodeGroupsAreFree) {
  for (auto c : {mst_broadcast(1, 100.0), mst_scatter(1, 100.0),
                 bucket_collect(1, 100.0), bucket_distributed_combine(1, 100.0)}) {
    EXPECT_DOUBLE_EQ(c.alpha_terms, 0.0);
    EXPECT_DOUBLE_EQ(c.beta_bytes, 0.0);
    EXPECT_DOUBLE_EQ(c.gamma_bytes, 0.0);
  }
}

TEST(PrimitiveCostsTest, RejectsBadArguments) {
  EXPECT_THROW(mst_broadcast(0, 8.0), Error);
  EXPECT_THROW(bucket_collect(4, -1.0), Error);
}

// Section 5.1: short collect = gather + broadcast; the startup count is
// 2 ceil(log p), within a factor two of optimal.
TEST(ComposedCostsTest, ShortVectorCollect) {
  const Cost c = short_vector_cost(Collective::kCollect, 30, 30.0);
  EXPECT_DOUBLE_EQ(c.alpha_terms, 10.0);
}

// Section 5.1: global combine-to-all = combine-to-one + broadcast with
// 2 ceil(log p) alpha + 2 ceil(log p) n beta + ceil(log p) n gamma.
TEST(ComposedCostsTest, ShortVectorCombineToAll) {
  const Cost c = short_vector_cost(Collective::kCombineToAll, 30, 1.0);
  EXPECT_DOUBLE_EQ(c.alpha_terms, 10.0);
  EXPECT_DOUBLE_EQ(c.beta_bytes, 10.0);
  EXPECT_DOUBLE_EQ(c.gamma_bytes, 5.0);
}

// Section 5.2: long broadcast = scatter + collect with
// (ceil(log p) + p - 1) alpha + 2 (p-1)/p n beta.
TEST(ComposedCostsTest, LongVectorBroadcast) {
  const Cost c = long_vector_cost(Collective::kBroadcast, 30, 30.0);
  EXPECT_DOUBLE_EQ(c.alpha_terms, 5.0 + 29.0);
  EXPECT_DOUBLE_EQ(c.beta_bytes, 2.0 * 29.0);
}

// Section 5.2: long combine-to-all = distributed combine + collect with
// 2 (p-1)/p n beta + (p-1)/p n gamma — the beta term is asymptotically
// optimal.
TEST(ComposedCostsTest, LongVectorCombineToAll) {
  const Cost c = long_vector_cost(Collective::kCombineToAll, 30, 30.0);
  EXPECT_DOUBLE_EQ(c.alpha_terms, 2.0 * 29.0);
  EXPECT_DOUBLE_EQ(c.beta_bytes, 2.0 * 29.0);
  EXPECT_DOUBLE_EQ(c.gamma_bytes, 29.0);
}

TEST(ComposedCostsTest, LongBeatsShortForLongVectors) {
  const double huge = 1e6;
  for (auto col : {Collective::kBroadcast, Collective::kCollect,
                   Collective::kCombineToAll, Collective::kCombineToOne,
                   Collective::kDistributedCombine}) {
    const MachineParams paragon = MachineParams::paragon();
    EXPECT_LT(long_vector_cost(col, 64, huge).seconds(paragon),
              short_vector_cost(col, 64, huge).seconds(paragon))
        << to_string(col);
  }
}

TEST(ComposedCostsTest, ShortBeatsLongForShortVectors) {
  const double tiny = 8.0;
  for (auto col : {Collective::kBroadcast, Collective::kCollect,
                   Collective::kCombineToAll}) {
    const MachineParams paragon = MachineParams::paragon();
    EXPECT_LT(short_vector_cost(col, 64, tiny).seconds(paragon),
              long_vector_cost(col, 64, tiny).seconds(paragon))
        << to_string(col);
  }
}

}  // namespace
}  // namespace intercom
