// Hop statistics derived from the topology layer's min_hops oracle.
#include "intercom/model/hops.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "intercom/topo/fattree.hpp"
#include "intercom/util/error.hpp"

namespace intercom {
namespace {

TEST(HopStatsTest, MeshDiameterAndMeanAreExact) {
  MeshTopology mesh(Mesh2D(4, 4));
  const HopStats s = hop_stats(mesh);
  EXPECT_TRUE(s.exact);
  EXPECT_EQ(s.diameter, 6);  // corner to corner
  EXPECT_EQ(s.pairs, 16u * 15u);
  // Mean Manhattan distance on a 4x4 grid: 2 * (mean 1-D distance) with
  // mean |i-j| over ordered distinct pairs = (sum of distances) / pairs.
  EXPECT_NEAR(s.mean_hops, 8.0 / 3.0, 1e-12);
}

TEST(HopStatsTest, HypercubeMeanIsHalfTheDimensions) {
  Hypercube cube(6);
  const HopStats s = hop_stats(cube);
  EXPECT_TRUE(s.exact);
  EXPECT_EQ(s.diameter, 6);
  // Mean popcount over nonzero masks: d * 2^(d-1) / (2^d - 1).
  EXPECT_NEAR(s.mean_hops, 6.0 * 32.0 / 63.0, 1e-12);
}

TEST(HopStatsTest, FatTreeDiameterIsTwiceTheLevels) {
  FatTree tree(2, 3);
  const HopStats s = hop_stats(tree);
  EXPECT_TRUE(s.exact);
  EXPECT_EQ(s.diameter, 6);
}

TEST(HopStatsTest, TorusBeatsTheMeshOnDiameter) {
  MeshTopology mesh(Mesh2D(8, 8));
  Torus2D torus(8, 8);
  EXPECT_LT(hop_stats(torus).diameter, hop_stats(mesh).diameter);
}

TEST(HopStatsTest, SampledScanIsSeededAndDeterministic) {
  MeshTopology mesh(Mesh2D(16, 32));  // 512 nodes: 261632 ordered pairs
  const HopStats a = hop_stats(mesh, /*max_exact_pairs=*/1000,
                               /*sample_pairs=*/5000, /*seed=*/42);
  const HopStats b = hop_stats(mesh, 1000, 5000, 42);
  EXPECT_FALSE(a.exact);
  EXPECT_EQ(a.pairs, 5000u);
  EXPECT_EQ(a.diameter, b.diameter);
  EXPECT_EQ(a.mean_hops, b.mean_hops);  // bitwise
  // The sampled mean should land near the exact one.
  const HopStats exact = hop_stats(mesh);
  EXPECT_TRUE(exact.exact);
  EXPECT_NEAR(a.mean_hops, exact.mean_hops, exact.mean_hops * 0.05);
}

TEST(HopStatsTest, TrivialTopologyHasNoPairs) {
  MeshTopology mesh(Mesh2D(1, 1));
  const HopStats s = hop_stats(mesh);
  EXPECT_TRUE(s.exact);
  EXPECT_EQ(s.pairs, 0u);
  EXPECT_EQ(s.diameter, 0);
}

TEST(HopStatsTest, RejectsZeroSampleBudget) {
  MeshTopology mesh(Mesh2D(16, 32));
  EXPECT_THROW(hop_stats(mesh, 10, 0), ConfigError);
}

}  // namespace
}  // namespace intercom
