#include "intercom/model/strategy.hpp"

#include <gtest/gtest.h>

#include <set>

namespace intercom {
namespace {

TEST(StrategyTest, LabelsMatchPaperNotation) {
  EXPECT_EQ((HybridStrategy{{30}, InnerAlg::kShortVector, false}).label(),
            "1x30,M");
  EXPECT_EQ((HybridStrategy{{30}, InnerAlg::kScatterCollect, false}).label(),
            "1x30,SC");
  EXPECT_EQ((HybridStrategy{{2, 15}, InnerAlg::kShortVector, false}).label(),
            "2x15,SMC");
  EXPECT_EQ((HybridStrategy{{2, 15}, InnerAlg::kScatterCollect, false}).label(),
            "2x15,SSCC");
  EXPECT_EQ(
      (HybridStrategy{{2, 3, 5}, InnerAlg::kShortVector, false}).label(),
      "2x3x5,SSMCC");
  EXPECT_EQ(
      (HybridStrategy{{2, 3, 5}, InnerAlg::kScatterCollect, false}).label(),
      "2x3x5,SSSCCC");
}

TEST(StrategyTest, NodeCountIsDimProduct) {
  EXPECT_EQ((HybridStrategy{{2, 3, 5}, InnerAlg::kShortVector, false})
                .node_count(),
            30);
  EXPECT_EQ((HybridStrategy{{7}, InnerAlg::kShortVector, false}).node_count(),
            7);
}

TEST(StrategyTest, EnumerationIncludesPureAlgorithms) {
  const auto all = enumerate_strategies(30, 3);
  const HybridStrategy mst{{30}, InnerAlg::kShortVector, false};
  const HybridStrategy sc{{30}, InnerAlg::kScatterCollect, false};
  EXPECT_NE(std::find(all.begin(), all.end(), mst), all.end());
  EXPECT_NE(std::find(all.begin(), all.end(), sc), all.end());
}

TEST(StrategyTest, EnumerationCoversTable2Hybrids) {
  const auto all = enumerate_strategies(30, 3);
  // Every hybrid named in Table 2 must be in the candidate set.
  for (const char* label :
       {"1x30,M", "2x15,SMC", "2x3x5,SSMCC", "3x10,SMC", "3x10,SSCC",
        "10x3,SSCC", "2x15,SSCC", "5x6,SSCC", "6x5,SSCC"}) {
    bool found = false;
    for (const auto& s : all) {
      if (s.label() == label) found = true;
    }
    EXPECT_TRUE(found) << label;
  }
}

TEST(StrategyTest, EnumerationCountFor30) {
  // Factorizations of 30 with k<=3 factors >= 2: k=1 (1), k=2 (6), k=3 (6).
  // Each k>=2 factorization yields 2 strategies (inner M or SC); k=1 yields
  // the two pure strategies.
  const auto all = enumerate_strategies(30, 3);
  EXPECT_EQ(all.size(), 2u + 2u * 12u);
}

TEST(StrategyTest, PrimeGroupOnlyPureStrategies) {
  const auto all = enumerate_strategies(31, 3);
  EXPECT_EQ(all.size(), 2u);  // the paper's "dimensions are prime" caveat
}

TEST(StrategyTest, SingletonGroup) {
  const auto all = enumerate_strategies(1, 3);
  ASSERT_EQ(all.size(), 1u);
  EXPECT_EQ(all[0].dims, std::vector<int>{1});
}

TEST(StrategyTest, AllStrategiesFactorP) {
  for (int p : {12, 30, 450, 512}) {
    for (const auto& s : enumerate_strategies(p, 4)) {
      EXPECT_EQ(s.node_count(), p) << s.label();
    }
  }
}

TEST(StrategyTest, LabelsAreUniqueWithinEnumeration) {
  const auto all = enumerate_strategies(24, 3);
  std::set<std::string> labels;
  for (const auto& s : all) labels.insert(s.label());
  EXPECT_EQ(labels.size(), all.size());
}

}  // namespace
}  // namespace intercom
