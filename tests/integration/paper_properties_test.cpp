// The paper's headline claims, executed as tests.
//
//  * Section 4: the building blocks "incur no network conflicts" — simulated
//    peak link load is exactly 1 on a linear array.
//  * Section 5.1: short-vector startup counts are within a factor two of the
//    optimal ceil(log2 p).
//  * Table 3 shape: against the NX-like baseline on a simulated 512-node
//    Paragon, iCC is comparable (slightly slower) for 8-byte vectors and
//    many times faster for 64 KB / 1 MB vectors; the serial NX collect loses
//    by an order of magnitude at every length.
//  * Section 8: the pipelined broadcast beats scatter/collect in a clean
//    simulation but loses once realistic OS timing jitter is injected.
#include <gtest/gtest.h>

#include "intercom/baseline/nx.hpp"
#include "intercom/core/pipelined.hpp"
#include "intercom/core/planner.hpp"
#include "intercom/sim/engine.hpp"
#include "intercom/topo/submesh.hpp"
#include "intercom/util/factorization.hpp"

namespace intercom {
namespace {

TEST(PaperPropertyTest, BuildingBlocksIncurNoNetworkConflicts) {
  const int p = 24;
  const std::size_t n = 24 * 64;
  const Group g = Group::contiguous(p);
  SimParams params;
  params.machine = MachineParams::unit();
  WormholeSimulator sim(Mesh2D(1, p), params);

  std::vector<std::pair<const char*, Schedule>> blocks;
  auto add = [&](const char* name, auto&& gen) {
    Schedule s;
    planner::Ctx ctx{s, 1};
    gen(ctx);
    s.set_levels(0);
    blocks.emplace_back(name, std::move(s));
  };
  const ElemRange range{0, n};
  add("mst_broadcast", [&](planner::Ctx& c) {
    planner::mst_broadcast(c, g, range, 0);
  });
  add("mst_combine_to_one", [&](planner::Ctx& c) {
    planner::mst_combine_to_one(c, g, range, 0);
  });
  add("mst_scatter", [&](planner::Ctx& c) {
    planner::mst_scatter(c, g, range, 0);
  });
  add("mst_gather", [&](planner::Ctx& c) {
    planner::mst_gather(c, g, range, 0);
  });
  add("bucket_collect", [&](planner::Ctx& c) {
    planner::bucket_collect(c, g, range);
  });
  add("bucket_distributed_combine", [&](planner::Ctx& c) {
    planner::bucket_distributed_combine(c, g, range);
  });
  for (auto& [name, schedule] : blocks) {
    const SimResult r = sim.run(schedule);
    EXPECT_EQ(r.peak_link_load, 1) << name;
  }
}

TEST(PaperPropertyTest, ShortVectorStartupWithinFactorTwoOfOptimal) {
  // Per Section 5.1 the composed short-vector algorithms use at most
  // 2 ceil(log2 p) startups (the primitives use exactly ceil(log2 p)).
  const Planner planner(MachineParams::paragon());
  for (int p : {5, 16, 30, 31, 512}) {
    const Group g = Group::contiguous(p);
    for (auto c : {Collective::kBroadcast, Collective::kCollect,
                   Collective::kCombineToAll, Collective::kCombineToOne,
                   Collective::kDistributedCombine}) {
      const auto strat = planner.select_strategy(c, g, 8);
      const Cost cost = planner.predict(c, strat, 8);
      EXPECT_LE(cost.alpha_terms, 2.0 * ceil_log2(p) + 1e-9)
          << to_string(c) << " p=" << p;
    }
  }
}

// ---- Table 3 shape ---------------------------------------------------------

struct Table3Entry {
  double nx = 0.0;
  double icc = 0.0;
  double ratio() const { return nx / icc; }
};

Table3Entry run_pair(Collective collective, const Mesh2D& mesh,
                     std::size_t nbytes) {
  SimParams params;
  params.machine = MachineParams::paragon();
  WormholeSimulator sim(mesh, params);
  const Group whole = whole_mesh_group(mesh);
  const Planner planner(params.machine, mesh);
  Table3Entry e;
  e.nx = sim.run(nx::plan(collective, whole, nbytes, 1, 0)).seconds;
  e.icc = sim.run(planner.plan(collective, whole, nbytes, 1, 0)).seconds;
  return e;
}

TEST(PaperPropertyTest, Table3BroadcastShape) {
  const Mesh2D mesh(16, 32);
  const auto tiny = run_pair(Collective::kBroadcast, mesh, 8);
  // Paper: 0.92 — NX slightly wins on 8 bytes because iCC's recursion has
  // per-level overhead.
  EXPECT_GT(tiny.ratio(), 0.6);
  EXPECT_LT(tiny.ratio(), 1.05);
  const auto big = run_pair(Collective::kBroadcast, mesh, 1 << 20);
  // Paper: 12.5 — our NX stand-in (flat MST) is better than the real NX, but
  // iCC must still win by a wide margin.
  EXPECT_GT(big.ratio(), 3.0);
}

TEST(PaperPropertyTest, Table3CollectShape) {
  const Mesh2D mesh(16, 32);
  // Paper: 77.1 at 8 B, 24.6 at 64 KB, 5.1 at 1 MB — the serial NX collect
  // loses everywhere.
  EXPECT_GT(run_pair(Collective::kCollect, mesh, 8).ratio(), 5.0);
  EXPECT_GT(run_pair(Collective::kCollect, mesh, 64 << 10).ratio(), 3.0);
  EXPECT_GT(run_pair(Collective::kCollect, mesh, 1 << 20).ratio(), 2.0);
}

TEST(PaperPropertyTest, Table3GlobalSumShape) {
  const Mesh2D mesh(16, 32);
  const auto tiny = run_pair(Collective::kCombineToAll, mesh, 8);
  // Paper: 0.88 for 8 bytes.
  EXPECT_GT(tiny.ratio(), 0.6);
  EXPECT_LT(tiny.ratio(), 1.05);
  // Paper: 7.10 at 64 KB, 16.0 at 1 MB.
  EXPECT_GT(run_pair(Collective::kCombineToAll, mesh, 64 << 10).ratio(), 2.0);
  EXPECT_GT(run_pair(Collective::kCombineToAll, mesh, 1 << 20).ratio(), 3.0);
}

TEST(PaperPropertyTest, NonPowerOfTwoMeshStillWins) {
  // Fig. 4 right: broadcast on a 15 x 30 mesh "deviates significantly from a
  // power-of-two mesh" and the hybrids must still deliver.
  const Mesh2D mesh(15, 30);
  EXPECT_GT(run_pair(Collective::kBroadcast, mesh, 1 << 20).ratio(), 3.0);
}

// ---- Section 8: pipelined algorithms vs reality ---------------------------

TEST(PaperPropertyTest, PipelinedWinsCleanLosesUnderJitter) {
  const int p = 30;
  const std::size_t n = 100000;
  const Group g = Group::contiguous(p);
  MachineParams machine = MachineParams::unit();
  machine.beta = 0.01;  // cheap bandwidth: startup effects matter

  // Pipelined broadcast tuned for the clean machine.
  Schedule pipelined;
  {
    planner::Ctx ctx{pipelined, 1};
    const int segments = planner::optimal_segments(
        p, static_cast<double>(n), machine);
    planner::pipelined_broadcast(ctx, g, ElemRange{0, n}, 0, segments);
    pipelined.set_levels(0);
  }
  // Scatter/collect broadcast (the library's simple long-vector algorithm).
  const Planner planner(machine);
  Schedule sc = planner.plan_with_strategy(
      Collective::kBroadcast, g, n, 1, 0,
      HybridStrategy{{p}, InnerAlg::kScatterCollect, false});
  sc.set_levels(0);

  SimParams clean;
  clean.machine = machine;
  WormholeSimulator clean_sim(Mesh2D(1, p), clean);
  const double pipe_clean = clean_sim.run(pipelined).seconds;
  const double sc_clean = clean_sim.run(sc).seconds;
  EXPECT_LT(pipe_clean, sc_clean)
      << "in theory the pipelined broadcast wins for long vectors";

  SimParams jittery = clean;
  jittery.jitter_mean = 5.0;  // OS timing irregularities (Section 8)
  jittery.jitter_seed = 7;
  WormholeSimulator jitter_sim(Mesh2D(1, p), jittery);
  const double pipe_jitter = jitter_sim.run(pipelined).seconds;
  const double sc_jitter = jitter_sim.run(sc).seconds;
  EXPECT_GT(pipe_jitter, sc_jitter)
      << "with timing irregularities the simple algorithm wins";
}

}  // namespace
}  // namespace intercom
