// Cross-substrate integration sweep: for a grid of (collective, group size,
// vector length, element size) the planner's auto-selected schedule must
// validate, run conflict-consistently in the simulator, and produce correct
// data in the reference executor.  This is the "any plan the library can
// emit is safe to execute" guarantee.
#include <gtest/gtest.h>

#include "intercom/core/partition.hpp"
#include "intercom/core/planner.hpp"
#include "intercom/ir/validate.hpp"
#include "intercom/sim/engine.hpp"
#include "testing/reference.hpp"

namespace intercom {
namespace {

using testing::RefExec;

struct SweepCase {
  int p;
  std::size_t elems;
};

class SweepP : public ::testing::TestWithParam<SweepCase> {};

TEST_P(SweepP, AutoPlansAreValidAndCorrectForAllCollectives) {
  const auto [p, elems] = GetParam();
  const Group g = Group::contiguous(p);
  const Planner planner(MachineParams::paragon());
  const int root = p > 3 ? 3 : 0;
  const auto pieces = block_partition(ElemRange{0, elems}, p);

  for (auto collective :
       {Collective::kBroadcast, Collective::kScatter, Collective::kGather,
        Collective::kCollect, Collective::kCombineToOne,
        Collective::kCombineToAll, Collective::kDistributedCombine}) {
    const Schedule s =
        planner.plan(collective, g, elems, sizeof(double), root);
    const auto v = validate(s);
    ASSERT_TRUE(v.ok) << to_string(collective) << "\n" << v.message();

    RefExec<double> exec(s);
    auto fill_all = [&] {
      for (int r = 0; r < p; ++r) {
        if (!exec.participates(r)) continue;
        auto u = exec.user(r);
        for (std::size_t i = 0; i < u.size() && i < elems; ++i) {
          u[i] = (r + 1.0);
        }
      }
    };
    switch (collective) {
      case Collective::kBroadcast: {
        for (std::size_t i = 0; i < elems; ++i) {
          exec.user(root)[i] = static_cast<double>(i) + 0.5;
        }
        exec.run();
        for (int r = 0; r < p; ++r) {
          for (std::size_t i = 0; i < elems; ++i) {
            ASSERT_DOUBLE_EQ(exec.user(r)[i], static_cast<double>(i) + 0.5);
          }
        }
        break;
      }
      case Collective::kScatter: {
        for (std::size_t i = 0; i < elems; ++i) {
          exec.user(root)[i] = static_cast<double>(i);
        }
        exec.run();
        for (int r = 0; r < p; ++r) {
          if (!exec.participates(r)) continue;
          const auto piece = pieces[static_cast<std::size_t>(r)];
          for (std::size_t i = piece.lo; i < piece.hi; ++i) {
            ASSERT_DOUBLE_EQ(exec.user(r)[i], static_cast<double>(i));
          }
        }
        break;
      }
      case Collective::kGather: {
        for (int r = 0; r < p; ++r) {
          if (!exec.participates(r)) continue;
          const auto piece = pieces[static_cast<std::size_t>(r)];
          for (std::size_t i = piece.lo; i < piece.hi; ++i) {
            exec.user(r)[i] = static_cast<double>(i) * 3.0;
          }
        }
        exec.run();
        for (std::size_t i = 0; i < elems; ++i) {
          ASSERT_DOUBLE_EQ(exec.user(root)[i], static_cast<double>(i) * 3.0);
        }
        break;
      }
      case Collective::kCollect: {
        for (int r = 0; r < p; ++r) {
          const auto piece = pieces[static_cast<std::size_t>(r)];
          for (std::size_t i = piece.lo; i < piece.hi; ++i) {
            exec.user(r)[i] = 100.0 * r;
          }
        }
        exec.run();
        for (int r = 0; r < p; ++r) {
          for (int owner = 0; owner < p; ++owner) {
            const auto piece = pieces[static_cast<std::size_t>(owner)];
            for (std::size_t i = piece.lo; i < piece.hi; ++i) {
              ASSERT_DOUBLE_EQ(exec.user(r)[i], 100.0 * owner);
            }
          }
        }
        break;
      }
      case Collective::kCombineToOne: {
        fill_all();
        exec.run();
        for (std::size_t i = 0; i < elems; ++i) {
          ASSERT_DOUBLE_EQ(exec.user(root)[i], p * (p + 1) / 2.0);
        }
        break;
      }
      case Collective::kCombineToAll: {
        fill_all();
        exec.run();
        for (int r = 0; r < p; ++r) {
          for (std::size_t i = 0; i < elems; ++i) {
            ASSERT_DOUBLE_EQ(exec.user(r)[i], p * (p + 1) / 2.0);
          }
        }
        break;
      }
      case Collective::kDistributedCombine: {
        fill_all();
        exec.run();
        for (int r = 0; r < p; ++r) {
          const auto piece = pieces[static_cast<std::size_t>(r)];
          for (std::size_t i = piece.lo; i < piece.hi; ++i) {
            ASSERT_DOUBLE_EQ(exec.user(r)[i], p * (p + 1) / 2.0);
          }
        }
        break;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SweepP,
    ::testing::Values(SweepCase{1, 1}, SweepCase{2, 1}, SweepCase{3, 2},
                      SweepCase{4, 4}, SweepCase{5, 100}, SweepCase{7, 7},
                      SweepCase{8, 4096}, SweepCase{12, 144},
                      SweepCase{13, 26},  // prime p
                      SweepCase{16, 1000}, SweepCase{24, 17},
                      SweepCase{30, 900}, SweepCase{31, 310}));

TEST(SweepTest, ByteElementsAndWideElements) {
  // Element sizes 1 and 16: partitioning must stay element-aligned.
  const Group g = Group::contiguous(6);
  const Planner planner(MachineParams::paragon());
  for (std::size_t elem_size : {1u, 16u}) {
    const Schedule s =
        planner.plan(Collective::kCollect, g, 25, elem_size, 0);
    EXPECT_TRUE(validate(s).ok);
    for (const auto& prog : s.programs()) {
      for (const auto& op : prog.ops) {
        if (op.has_send()) {
          EXPECT_EQ(op.src.bytes % elem_size, 0u);
        }
        if (op.has_recv()) {
          EXPECT_EQ(op.dst.bytes % elem_size, 0u);
        }
      }
    }
  }
}

TEST(SweepTest, SimulatorAgreesWithValidatorOnAllAutoPlans) {
  // Anything the validator accepts, the simulator must execute (same
  // rendezvous semantics, no timing-dependent deadlock).
  const Planner planner(MachineParams::paragon());
  SimParams params;
  params.machine = MachineParams::paragon();
  for (int p : {2, 5, 12, 30}) {
    WormholeSimulator sim(Mesh2D(1, p), params);
    const Group g = Group::contiguous(p);
    for (auto collective :
         {Collective::kBroadcast, Collective::kCollect,
          Collective::kCombineToAll, Collective::kDistributedCombine}) {
      for (std::size_t n : {8u, 100000u}) {
        const Schedule s = planner.plan(collective, g, n, 1, 0);
        ASSERT_TRUE(validate(s).ok);
        const SimResult r = sim.run(s);
        EXPECT_GT(r.seconds, 0.0);
      }
    }
  }
}

}  // namespace
}  // namespace intercom
