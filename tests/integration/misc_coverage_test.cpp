// Cross-cutting coverage: the umbrella header, string renderings, metadata
// consistency between planner and cost model, asymmetric sendrecv timing,
// and baseline/hypercube paths only exercised indirectly elsewhere.
#include <gtest/gtest.h>

#include <cmath>

#include "intercom/intercom.hpp"
#include "testing/reference.hpp"

namespace intercom {
namespace {

using testing::RefExec;

TEST(UmbrellaTest, EverythingIsReachableFromOneInclude) {
  // Touch one symbol from each layer through the umbrella header.
  const Mesh2D mesh(2, 2);
  const Hypercube cube(2);
  const Torus2D torus(2, 2);
  const Group g = Group::contiguous(4);
  const Planner planner;
  const hypercube::HypercubePlanner cube_planner;
  const PlanCache cache;
  EXPECT_EQ(mesh.node_count() + cube.node_count() + torus.node_count(), 12);
  EXPECT_EQ(g.size(), 4);
  EXPECT_EQ(cache.size(), 0u);
  (void)planner;
  (void)cube_planner;
}

TEST(StringsTest, CollectiveNames) {
  EXPECT_EQ(to_string(Collective::kBroadcast), "broadcast");
  EXPECT_EQ(to_string(Collective::kScatter), "scatter");
  EXPECT_EQ(to_string(Collective::kGather), "gather");
  EXPECT_EQ(to_string(Collective::kCollect), "collect");
  EXPECT_EQ(to_string(Collective::kCombineToOne), "combine-to-one");
  EXPECT_EQ(to_string(Collective::kCombineToAll), "combine-to-all");
  EXPECT_EQ(to_string(Collective::kDistributedCombine), "distributed-combine");
}

TEST(StringsTest, CostWithGammaTerm) {
  const Cost c{2.0, 60.0, 30.0, 0.0};
  EXPECT_EQ(c.to_string(30.0), "2a + 2nb + 1ng");
}

TEST(StringsTest, CubeAlgorithmNames) {
  EXPECT_EQ(hypercube::to_string(hypercube::CubeAlgorithm::kMstBroadcast),
            "mst-broadcast");
  EXPECT_EQ(hypercube::to_string(hypercube::CubeAlgorithm::kHalvingDoubling),
            "halving-doubling");
}

TEST(MetadataTest, ScheduleLevelsMatchCostModel) {
  const Planner planner(MachineParams::paragon());
  const Group g = Group::contiguous(24);
  for (auto c : {Collective::kBroadcast, Collective::kCollect,
                 Collective::kCombineToAll}) {
    for (std::size_t n : {8u, 1u << 18}) {
      const auto strat = planner.select_strategy(c, g, n);
      const Schedule s = planner.plan_with_strategy(c, g, n, 1, 0, strat);
      const Cost cost = planner.predict(c, strat, n);
      EXPECT_EQ(s.levels(), static_cast<int>(std::lround(cost.levels)))
          << to_string(c) << " n=" << n;
    }
  }
}

TEST(SimTest, AsymmetricSendRecvHalvesFinishIndependently) {
  // Node 0 exchanges with 1 and 2: its sendrecv's halves complete at
  // different times; the op finishes at the max, the schedule at the sum of
  // nothing more.
  SimParams params;
  params.machine = MachineParams::unit();
  WormholeSimulator sim(Mesh2D(1, 3), params);
  Schedule s;
  s.set_levels(0);
  const BufSlice small{kUserBuf, 0, 10};
  const BufSlice big{kUserBuf, 16, 100};
  s.reserve_slice(0, BufSlice{kUserBuf, 0, 116});
  s.reserve_slice(1, small);
  s.reserve_slice(2, BufSlice{kUserBuf, 0, 116});
  // 0 sends 10B to 1 while receiving 100B from 2.
  s.program(0).ops.push_back(Op::sendrecv(1, small, 0, 2, big, 1));
  s.program(1).ops.push_back(Op::recv(0, small, 0));
  s.program(2).ops.push_back(Op::send(0, big, 1));
  const SimResult r = sim.run(s);
  EXPECT_DOUBLE_EQ(r.seconds, 1.0 + 100.0);  // bounded by the big half
}

TEST(AnalysisTest, SendRecvCriticalPathIsMaxOfHalves) {
  Schedule s;
  s.set_levels(0);
  const BufSlice small{kUserBuf, 0, 10};
  const BufSlice big{kUserBuf, 16, 100};
  s.reserve_slice(0, BufSlice{kUserBuf, 0, 116});
  s.reserve_slice(1, small);
  s.reserve_slice(2, BufSlice{kUserBuf, 0, 116});
  s.program(0).ops.push_back(Op::sendrecv(1, small, 0, 2, big, 1));
  s.program(1).ops.push_back(Op::recv(0, small, 0));
  s.program(2).ops.push_back(Op::send(0, big, 1));
  EXPECT_DOUBLE_EQ(analyze(s, MachineParams::unit()).critical_seconds, 101.0);
}

TEST(NxTest, DistributedCombineDataCorrect) {
  const int p = 5;
  const std::size_t elems = 15;
  Schedule s = nx::distributed_combine(Group::contiguous(p), elems,
                                       sizeof(double));
  validate_or_throw(s);
  RefExec<double> exec(s);
  for (int r = 0; r < p; ++r) {
    for (std::size_t i = 0; i < elems; ++i) exec.user(r)[i] = r + 1.0;
  }
  exec.run();
  // NX emulates reduce-scatter with gdsum; every rank's piece (indeed the
  // whole vector) holds the full sum.
  const auto pieces = block_partition(ElemRange{0, elems}, p);
  for (int r = 0; r < p; ++r) {
    const auto piece = pieces[static_cast<std::size_t>(r)];
    for (std::size_t i = piece.lo; i < piece.hi; ++i) {
      EXPECT_DOUBLE_EQ(exec.user(r)[i], 15.0);
    }
  }
}

TEST(HypercubePlannerTest, CombineToOneHalvingGatherPath) {
  const hypercube::HypercubePlanner planner(MachineParams::ipsc860());
  const int p = 16;
  const std::size_t elems = 1 << 14;  // long: halving + gather selected
  EXPECT_EQ(planner.select_algorithm(Collective::kCombineToOne, p,
                                     elems * sizeof(double)),
            hypercube::CubeAlgorithm::kHalvingDoubling);
  const Schedule s = planner.plan(Collective::kCombineToOne,
                                  Group::contiguous(p), elems,
                                  sizeof(double), 3);
  validate_or_throw(s);
  RefExec<double> exec(s);
  for (int r = 0; r < p; ++r) {
    for (std::size_t i = 0; i < elems; ++i) exec.user(r)[i] = 1.0;
  }
  exec.run();
  for (std::size_t i = 0; i < elems; ++i) {
    ASSERT_DOUBLE_EQ(exec.user(3)[i], 16.0);
  }
}

TEST(TimelineTest, BucketsClampAtHorizon) {
  SimParams params;
  params.machine = MachineParams::unit();
  params.record_trace = true;
  WormholeSimulator sim(Mesh2D(1, 2), params);
  Schedule s;
  s.set_levels(0);
  const BufSlice u{kUserBuf, 0, 8};
  s.add_transfer(0, 1, u, u);
  const SimResult r = sim.run(s);
  // A 1-column timeline must not index out of bounds.
  const std::string one = render_timeline(r, 1);
  EXPECT_NE(one.find("node 0"), std::string::npos);
  EXPECT_THROW(render_timeline(r, 0), Error);
}

}  // namespace
}  // namespace intercom
