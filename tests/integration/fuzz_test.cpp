// Randomized property testing: hundreds of randomly drawn collective
// requests — random group size and membership permutation, random vector
// length and element size, random root and strategy — must all produce
// schedules that (a) validate, (b) have critical paths no worse than the
// simulator observes, and (c) move the right data in the reference
// executor.  Seeds are fixed, so failures reproduce.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "intercom/core/partition.hpp"
#include "intercom/core/planner.hpp"
#include "intercom/ir/analysis.hpp"
#include "intercom/ir/validate.hpp"
#include "intercom/sim/engine.hpp"
#include "intercom/util/rng.hpp"
#include "testing/reference.hpp"

namespace intercom {
namespace {

using testing::RefExec;

Group random_group(Rng& rng, int p, int universe) {
  std::vector<int> all(static_cast<std::size_t>(universe));
  std::iota(all.begin(), all.end(), 0);
  // Fisher-Yates prefix shuffle.
  for (int i = 0; i < p; ++i) {
    const auto j = static_cast<std::size_t>(
        rng.next_in_range(i, universe - 1));
    std::swap(all[static_cast<std::size_t>(i)], all[j]);
  }
  return Group(std::vector<int>(all.begin(), all.begin() + p));
}

Collective random_collective(Rng& rng) {
  constexpr Collective kAll[] = {
      Collective::kBroadcast,     Collective::kScatter,
      Collective::kGather,        Collective::kCollect,
      Collective::kCombineToOne,  Collective::kCombineToAll,
      Collective::kDistributedCombine};
  return kAll[rng.next_in_range(0, 6)];
}

class FuzzP : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzP, RandomRequestsAreValidAndCorrect) {
  Rng rng(GetParam());
  const Planner planner(MachineParams::paragon());
  constexpr int kUniverse = 64;
  SimParams sim_params;
  sim_params.machine = MachineParams::paragon();
  WormholeSimulator sim(Mesh2D(8, 8), sim_params);

  for (int trial = 0; trial < 40; ++trial) {
    const int p = static_cast<int>(rng.next_in_range(1, 24));
    const Group group = random_group(rng, p, kUniverse);
    const Collective collective = random_collective(rng);
    const std::size_t elems =
        static_cast<std::size_t>(rng.next_in_range(0, 300));
    const int root = static_cast<int>(rng.next_in_range(0, p - 1));
    // Random strategy from the candidate set ~half the time, auto otherwise.
    Schedule s;
    if (rng.next_double() < 0.5) {
      const auto candidates = enumerate_strategies(p, 3);
      const auto& strat = candidates[static_cast<std::size_t>(
          rng.next_in_range(0, static_cast<std::int64_t>(candidates.size()) - 1))];
      if (collective == Collective::kScatter ||
          collective == Collective::kGather) {
        s = planner.plan(collective, group, elems, sizeof(double), root);
      } else {
        s = planner.plan_with_strategy(collective, group, elems,
                                       sizeof(double), root, strat);
      }
    } else {
      s = planner.plan(collective, group, elems, sizeof(double), root);
    }
    const auto v = validate(s);
    ASSERT_TRUE(v.ok) << "trial " << trial << " " << s.algorithm() << " p=" << p
                      << " elems=" << elems << "\n"
                      << v.message();

    // Analysis terminates and lower-bounds the simulator.
    const double critical =
        analyze(s, sim_params.machine).critical_seconds;
    const double simulated = sim.run(s).seconds;
    ASSERT_LE(critical, simulated * (1.0 + 1e-9) + 1e-12)
        << "trial " << trial << " " << s.algorithm();

    // Data correctness: fill with rank tags, check the collective's
    // contract on the reference executor.
    RefExec<double> exec(s);
    const auto pieces = block_partition(ElemRange{0, elems}, p);
    const double rank_sum = p * (p + 1) / 2.0;
    for (int r = 0; r < p; ++r) {
      const int node = group.physical(r);
      if (!exec.participates(node)) continue;
      auto u = exec.user(node);
      for (std::size_t i = 0; i < std::min<std::size_t>(u.size(), elems);
           ++i) {
        u[i] = r + 1.0;
      }
    }
    if (collective == Collective::kBroadcast) {
      auto u = exec.user(group.physical(root));
      for (std::size_t i = 0; i < elems; ++i) u[i] = 42.0;
    }
    exec.run();
    switch (collective) {
      case Collective::kBroadcast:
        for (int r = 0; r < p; ++r) {
          auto u = exec.user(group.physical(r));
          for (std::size_t i = 0; i < elems; ++i) {
            ASSERT_DOUBLE_EQ(u[i], 42.0) << "trial " << trial;
          }
        }
        break;
      case Collective::kCombineToAll:
        for (int r = 0; r < p; ++r) {
          auto u = exec.user(group.physical(r));
          for (std::size_t i = 0; i < elems; ++i) {
            ASSERT_DOUBLE_EQ(u[i], rank_sum) << "trial " << trial;
          }
        }
        break;
      case Collective::kCombineToOne: {
        auto u = exec.user(group.physical(root));
        for (std::size_t i = 0; i < elems; ++i) {
          ASSERT_DOUBLE_EQ(u[i], rank_sum) << "trial " << trial;
        }
        break;
      }
      case Collective::kDistributedCombine:
        for (int r = 0; r < p; ++r) {
          auto u = exec.user(group.physical(r));
          const auto piece = pieces[static_cast<std::size_t>(r)];
          for (std::size_t i = piece.lo; i < piece.hi; ++i) {
            ASSERT_DOUBLE_EQ(u[i], rank_sum) << "trial " << trial;
          }
        }
        break;
      case Collective::kCollect:
        for (int r = 0; r < p; ++r) {
          auto u = exec.user(group.physical(r));
          for (int owner = 0; owner < p; ++owner) {
            const auto piece = pieces[static_cast<std::size_t>(owner)];
            for (std::size_t i = piece.lo; i < piece.hi; ++i) {
              ASSERT_DOUBLE_EQ(u[i], owner + 1.0) << "trial " << trial;
            }
          }
        }
        break;
      case Collective::kScatter:
        for (int r = 0; r < p; ++r) {
          const int node = group.physical(r);
          if (!exec.participates(node)) continue;
          auto u = exec.user(node);
          const auto piece = pieces[static_cast<std::size_t>(r)];
          for (std::size_t i = piece.lo; i < piece.hi && i < u.size(); ++i) {
            ASSERT_DOUBLE_EQ(u[i], root + 1.0) << "trial " << trial;
          }
        }
        break;
      case Collective::kGather: {
        auto u = exec.user(group.physical(root));
        for (int owner = 0; owner < p; ++owner) {
          const auto piece = pieces[static_cast<std::size_t>(owner)];
          for (std::size_t i = piece.lo; i < piece.hi; ++i) {
            ASSERT_DOUBLE_EQ(u[i], owner + 1.0) << "trial " << trial;
          }
        }
        break;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzP,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u, 34u,
                                           55u, 89u));

class MeshFuzzP : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MeshFuzzP, RandomSubmeshGroupsWithMeshAwarePlanning) {
  // Mesh-aware planner on random rectangular submeshes: mesh-aligned
  // strategies must validate, simulate, and deliver correct data just like
  // the linear-array ones.
  Rng rng(GetParam());
  const Mesh2D mesh(6, 8);
  const Planner planner(MachineParams::paragon(), mesh);
  SimParams sim_params;
  sim_params.machine = MachineParams::paragon();
  WormholeSimulator sim(mesh, sim_params);
  for (int trial = 0; trial < 25; ++trial) {
    const int rows = static_cast<int>(rng.next_in_range(1, 6));
    const int cols = static_cast<int>(rng.next_in_range(1, 8));
    const int row0 = static_cast<int>(rng.next_in_range(0, 6 - rows));
    const int col0 = static_cast<int>(rng.next_in_range(0, 8 - cols));
    std::vector<int> members;
    for (int r = row0; r < row0 + rows; ++r) {
      for (int c = col0; c < col0 + cols; ++c) {
        members.push_back(mesh.node_at(r, c));
      }
    }
    const Group group{members};
    const int p = group.size();
    const std::size_t elems =
        static_cast<std::size_t>(rng.next_in_range(1, 5000));
    const Collective collective = random_collective(rng);
    const int root = static_cast<int>(rng.next_in_range(0, p - 1));
    const Schedule s =
        planner.plan(collective, group, elems, sizeof(double), root);
    const auto v = validate(s);
    ASSERT_TRUE(v.ok) << "trial " << trial << " " << s.algorithm() << "\n"
                      << v.message();
    ASSERT_GE(sim.run(s).seconds, 0.0);
    // Data spot check for combine-to-all (exercises every stage kind).
    if (collective == Collective::kCombineToAll) {
      RefExec<double> exec(s);
      for (int r = 0; r < p; ++r) {
        auto u = exec.user(group.physical(r));
        for (std::size_t i = 0; i < elems; ++i) u[i] = r + 1.0;
      }
      exec.run();
      for (int r = 0; r < p; ++r) {
        auto u = exec.user(group.physical(r));
        for (std::size_t i = 0; i < elems; ++i) {
          ASSERT_DOUBLE_EQ(u[i], p * (p + 1) / 2.0)
              << "trial " << trial << " " << s.algorithm();
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MeshFuzzP,
                         ::testing::Values(7u, 14u, 28u, 56u, 112u));

}  // namespace
}  // namespace intercom
