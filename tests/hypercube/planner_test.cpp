// Hypercube planner tests: regime selection, schedule validity, data
// correctness, and execution on real threads through the raw executor.
#include <gtest/gtest.h>

#include <thread>

#include "intercom/hypercube/planner.hpp"
#include "intercom/ir/validate.hpp"
#include "intercom/runtime/executor.hpp"
#include "intercom/sim/engine.hpp"
#include "testing/reference.hpp"

namespace intercom {
namespace {

using hypercube::CubeAlgorithm;
using hypercube::HypercubePlanner;
using testing::RefExec;

TEST(HypercubePlannerTest, BroadcastRegimes) {
  const HypercubePlanner planner(MachineParams::ipsc860());
  EXPECT_EQ(planner.select_algorithm(Collective::kBroadcast, 64, 8),
            CubeAlgorithm::kMstBroadcast);
  EXPECT_EQ(planner.select_algorithm(Collective::kBroadcast, 64, 1 << 20),
            CubeAlgorithm::kScatterRdCollect);
}

TEST(HypercubePlannerTest, AllreduceRegimes) {
  const HypercubePlanner planner(MachineParams::ipsc860());
  EXPECT_EQ(planner.select_algorithm(Collective::kCombineToAll, 64, 8),
            CubeAlgorithm::kExchangeAllreduce);
  EXPECT_EQ(planner.select_algorithm(Collective::kCombineToAll, 64, 1 << 20),
            CubeAlgorithm::kHalvingDoubling);
}

TEST(HypercubePlannerTest, RejectsNonPowerOfTwo) {
  const HypercubePlanner planner;
  EXPECT_THROW(planner.plan(Collective::kBroadcast, Group::contiguous(6), 8,
                            1, 0),
               Error);
}

TEST(HypercubePlannerTest, AllPlansValidateAndDeliver) {
  const HypercubePlanner planner(MachineParams::ipsc860());
  for (int p : {1, 2, 8, 16}) {
    const Group g = Group::contiguous(p);
    for (auto collective :
         {Collective::kBroadcast, Collective::kCollect,
          Collective::kCombineToAll, Collective::kCombineToOne,
          Collective::kDistributedCombine, Collective::kScatter,
          Collective::kGather}) {
      for (std::size_t elems : {16u, 4096u}) {
        const Schedule s =
            planner.plan(collective, g, elems, sizeof(double), 0);
        const auto v = validate(s);
        ASSERT_TRUE(v.ok) << s.algorithm() << "\n" << v.message();
      }
    }
    // Spot-check allreduce data correctness.
    const Schedule s =
        planner.plan(Collective::kCombineToAll, g, 32, sizeof(double), 0);
    RefExec<double> exec(s);
    for (int r = 0; r < p; ++r) {
      for (std::size_t i = 0; i < 32; ++i) exec.user(r)[i] = r + 1.0;
    }
    exec.run();
    for (int r = 0; r < p; ++r) {
      ASSERT_DOUBLE_EQ(exec.user(r)[31], p * (p + 1) / 2.0) << "p=" << p;
    }
  }
}

TEST(HypercubePlannerTest, PlansSimulateConflictFreeOnTheCube) {
  const HypercubePlanner planner(MachineParams::ipsc860());
  const int d = 4;
  auto cube = std::make_shared<Hypercube>(d);
  SimParams params;
  params.machine = MachineParams::ipsc860();
  WormholeSimulator sim(cube, params);
  const Group g = Group::contiguous(1 << d);
  for (auto collective :
       {Collective::kBroadcast, Collective::kCollect,
        Collective::kCombineToAll, Collective::kDistributedCombine}) {
    for (std::size_t n : {8u, 1u << 16}) {
      const Schedule s = planner.plan(collective, g, n, 1, 0);
      EXPECT_EQ(sim.run(s).peak_link_load, 1)
          << s.algorithm() << " n=" << n;
    }
  }
}

TEST(HypercubePlannerTest, ExecutesOnRealThreads) {
  // Hypercube schedules run on the thread transport via the raw executor —
  // the same path the Communicator uses for mesh plans.
  const HypercubePlanner planner(MachineParams::ipsc860());
  const int p = 8;
  const std::size_t elems = 64;
  const Group g = Group::contiguous(p);
  const Schedule s =
      planner.plan(Collective::kCombineToAll, g, elems, sizeof(double), 0);
  Transport transport(p);
  const ReduceOp op = sum_op<double>();
  std::vector<std::vector<double>> data(static_cast<std::size_t>(p),
                                        std::vector<double>(elems));
  for (int r = 0; r < p; ++r) {
    for (std::size_t i = 0; i < elems; ++i) {
      data[static_cast<std::size_t>(r)][i] = r + 1.0;
    }
  }
  std::vector<std::thread> threads;
  for (int r = 0; r < p; ++r) {
    threads.emplace_back([&, r] {
      execute_program(
          transport, s, r,
          std::as_writable_bytes(std::span<double>(data[static_cast<std::size_t>(r)])),
          /*ctx=*/77, &op);
    });
  }
  for (auto& t : threads) t.join();
  for (int r = 0; r < p; ++r) {
    for (std::size_t i = 0; i < elems; ++i) {
      ASSERT_DOUBLE_EQ(data[static_cast<std::size_t>(r)][i], 36.0);
    }
  }
}

TEST(TransportTimeoutTest, RecvTimesOutWithDiagnostic) {
  Transport t(2);
  t.set_recv_timeout_ms(50);
  std::vector<std::byte> buf(8);
  try {
    t.recv(0, 1, 1, 5, buf);
    FAIL() << "expected timeout";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("timed out"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("tag 5"), std::string::npos);
  }
  EXPECT_THROW(t.set_recv_timeout_ms(-1), Error);
}

TEST(TransportTimeoutTest, TimelySendStillDelivers) {
  Transport t(2);
  t.set_recv_timeout_ms(5000);
  std::thread sender([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    std::vector<std::byte> msg{std::byte{7}};
    t.send(0, 1, 1, 0, msg);
  });
  std::vector<std::byte> buf(1);
  t.recv(0, 1, 1, 0, buf);
  sender.join();
  EXPECT_EQ(buf[0], std::byte{7});
}

}  // namespace
}  // namespace intercom
