// Hypercube collective tests: dimension-exchange correctness, hop-locality
// (every transfer a single cube edge), conflict-freedom, and the analytic
// costs.
#include <gtest/gtest.h>

#include "intercom/hypercube/algorithms.hpp"
#include "intercom/ir/validate.hpp"
#include "intercom/sim/engine.hpp"
#include "intercom/util/factorization.hpp"
#include "testing/reference.hpp"

namespace intercom {
namespace {

using testing::RefExec;

class DimExchangeP : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(DimExchangeP, CollectDeliversEverything) {
  const auto [p, elems_i] = GetParam();
  const std::size_t elems = static_cast<std::size_t>(elems_i);
  const Group g = Group::contiguous(p);
  Schedule s;
  planner::Ctx ctx{s, sizeof(double)};
  hypercube::dimension_exchange_collect(ctx, g, ElemRange{0, elems});
  validate_or_throw(s);
  const auto pieces = block_partition(ElemRange{0, elems}, p);
  RefExec<double> exec(s);
  for (int r = 0; r < p; ++r) {
    const auto piece = pieces[static_cast<std::size_t>(r)];
    for (std::size_t i = piece.lo; i < piece.hi; ++i) {
      exec.user(r)[i] = 100.0 * r + static_cast<double>(i);
    }
  }
  exec.run();
  for (int r = 0; r < p; ++r) {
    for (int owner = 0; owner < p; ++owner) {
      const auto piece = pieces[static_cast<std::size_t>(owner)];
      for (std::size_t i = piece.lo; i < piece.hi; ++i) {
        ASSERT_DOUBLE_EQ(exec.user(r)[i], 100.0 * owner + static_cast<double>(i))
            << "rank " << r;
      }
    }
  }
}

TEST_P(DimExchangeP, DistributedCombineReducesPieces) {
  const auto [p, elems_i] = GetParam();
  const std::size_t elems = static_cast<std::size_t>(elems_i);
  const Group g = Group::contiguous(p);
  Schedule s;
  planner::Ctx ctx{s, sizeof(double)};
  hypercube::dimension_exchange_distributed_combine(ctx, g,
                                                    ElemRange{0, elems});
  validate_or_throw(s);
  RefExec<double> exec(s);
  for (int r = 0; r < p; ++r) {
    for (std::size_t i = 0; i < elems; ++i) {
      exec.user(r)[i] = (r + 1.0) * (static_cast<double>(i) + 1.0);
    }
  }
  exec.run();
  const auto pieces = block_partition(ElemRange{0, elems}, p);
  for (int r = 0; r < p; ++r) {
    const auto piece = pieces[static_cast<std::size_t>(r)];
    for (std::size_t i = piece.lo; i < piece.hi; ++i) {
      ASSERT_DOUBLE_EQ(exec.user(r)[i],
                       p * (p + 1) / 2.0 * (static_cast<double>(i) + 1.0))
          << "rank " << r;
    }
  }
}

TEST_P(DimExchangeP, CombineToAllBothVariants) {
  const auto [p, elems_i] = GetParam();
  const std::size_t elems = static_cast<std::size_t>(elems_i);
  const Group g = Group::contiguous(p);
  for (int variant = 0; variant < 2; ++variant) {
    Schedule s;
    planner::Ctx ctx{s, sizeof(double)};
    if (variant == 0) {
      hypercube::exchange_combine_to_all(ctx, g, ElemRange{0, elems});
    } else {
      hypercube::long_combine_to_all(ctx, g, ElemRange{0, elems});
    }
    validate_or_throw(s);
    RefExec<double> exec(s);
    for (int r = 0; r < p; ++r) {
      for (std::size_t i = 0; i < elems; ++i) exec.user(r)[i] = r + 1.0;
    }
    exec.run();
    for (int r = 0; r < p; ++r) {
      for (std::size_t i = 0; i < elems; ++i) {
        ASSERT_DOUBLE_EQ(exec.user(r)[i], p * (p + 1) / 2.0)
            << "variant " << variant << " rank " << r;
      }
    }
  }
}

TEST_P(DimExchangeP, LongBroadcastDelivers) {
  const auto [p, elems_i] = GetParam();
  const std::size_t elems = static_cast<std::size_t>(elems_i);
  const Group g = Group::contiguous(p);
  const int root = p > 5 ? 5 : 0;
  Schedule s;
  planner::Ctx ctx{s, sizeof(double)};
  hypercube::long_broadcast(ctx, g, ElemRange{0, elems}, root);
  validate_or_throw(s);
  RefExec<double> exec(s);
  for (std::size_t i = 0; i < elems; ++i) {
    exec.user(root)[i] = static_cast<double>(i) * 2.0 + 1.0;
  }
  exec.run();
  for (int r = 0; r < p; ++r) {
    for (std::size_t i = 0; i < elems; ++i) {
      ASSERT_DOUBLE_EQ(exec.user(r)[i], static_cast<double>(i) * 2.0 + 1.0);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, DimExchangeP,
    ::testing::Values(std::make_tuple(1, 4), std::make_tuple(2, 9),
                      std::make_tuple(4, 16), std::make_tuple(8, 23),
                      std::make_tuple(16, 64), std::make_tuple(32, 7)));

TEST(DimExchangeTest, RequiresPowerOfTwo) {
  Schedule s;
  planner::Ctx ctx{s, 8};
  EXPECT_THROW(hypercube::dimension_exchange_collect(
                   ctx, Group::contiguous(6), ElemRange{0, 6}),
               Error);
}

TEST(HypercubeSimTest, DimensionExchangeIsConflictFreeOnTheCube) {
  // Every transfer of the dimension-exchange algorithms crosses exactly one
  // cube edge, and the pairwise exchanges of a step use disjoint channels.
  const int d = 4;
  const int p = 1 << d;
  auto cube = std::make_shared<Hypercube>(d);
  SimParams params;
  params.machine = MachineParams::unit();
  WormholeSimulator sim(cube, params);
  for (int variant = 0; variant < 3; ++variant) {
    Schedule s;
    planner::Ctx ctx{s, 1};
    const Group g = Group::contiguous(p);
    const ElemRange range{0, static_cast<std::size_t>(p) * 16};
    if (variant == 0) {
      hypercube::dimension_exchange_collect(ctx, g, range);
    } else if (variant == 1) {
      hypercube::dimension_exchange_distributed_combine(ctx, g, range);
    } else {
      hypercube::long_broadcast(ctx, g, range, 0);
    }
    s.set_levels(0);
    const SimResult r = sim.run(s);
    EXPECT_EQ(r.peak_link_load, 1) << "variant " << variant;
  }
}

TEST(HypercubeSimTest, CollectTimeMatchesAnalyticCost) {
  const int d = 4;
  const int p = 1 << d;
  auto cube = std::make_shared<Hypercube>(d);
  SimParams params;
  params.machine = MachineParams::unit();
  WormholeSimulator sim(cube, params);
  Schedule s;
  planner::Ctx ctx{s, 1};
  const std::size_t n = static_cast<std::size_t>(p) * 64;
  hypercube::dimension_exchange_collect(ctx, Group::contiguous(p),
                                        ElemRange{0, n});
  s.set_levels(0);
  Cost c = hypercube::dimension_exchange_collect_cost(p, static_cast<double>(n));
  c.levels = 0;
  EXPECT_DOUBLE_EQ(sim.run(s).seconds, c.seconds(MachineParams::unit()));
}

TEST(HypercubeSimTest, GrayPipelinedBroadcastIsConflictFree) {
  const int d = 5;
  auto cube = std::make_shared<Hypercube>(d);
  SimParams params;
  params.machine = MachineParams::unit();
  WormholeSimulator sim(cube, params);
  Schedule s;
  planner::Ctx ctx{s, 1};
  hypercube::gray_ring_pipelined_broadcast(ctx, *cube, ElemRange{0, 1 << 12},
                                           /*root=*/3, /*segments=*/16);
  s.set_levels(0);
  EXPECT_EQ(sim.run(s).peak_link_load, 1);
}

TEST(HypercubeSimTest, GrayPipelinedDelivers) {
  Hypercube cube(3);
  Schedule s;
  planner::Ctx ctx{s, sizeof(double)};
  hypercube::gray_ring_pipelined_broadcast(ctx, cube, ElemRange{0, 24}, 6, 4);
  validate_or_throw(s);
  RefExec<double> exec(s);
  for (std::size_t i = 0; i < 24; ++i) exec.user(6)[i] = 0.5 * i;
  exec.run();
  for (int node = 0; node < 8; ++node) {
    for (std::size_t i = 0; i < 24; ++i) {
      ASSERT_DOUBLE_EQ(exec.user(node)[i], 0.5 * i) << "node " << node;
    }
  }
}

TEST(HypercubeCostTest, CostFormulas) {
  // Recursive doubling: log p startups, (p-1)/p n beta — both optimal.
  const Cost collect = hypercube::dimension_exchange_collect_cost(16, 160.0);
  EXPECT_DOUBLE_EQ(collect.alpha_terms, 4.0);
  EXPECT_DOUBLE_EQ(collect.beta_bytes, 150.0);
  const Cost rs =
      hypercube::dimension_exchange_distributed_combine_cost(16, 160.0);
  EXPECT_DOUBLE_EQ(rs.gamma_bytes, 150.0);
  const Cost ar = hypercube::long_combine_to_all_cost(16, 160.0);
  EXPECT_DOUBLE_EQ(ar.alpha_terms, 8.0);
  EXPECT_DOUBLE_EQ(ar.beta_bytes, 300.0);
  // The hypercube long broadcast has log-latency, unlike the ring collect's
  // (p-1) startups on a mesh.
  const Cost bc = hypercube::long_broadcast_cost(16, 160.0);
  EXPECT_DOUBLE_EQ(bc.alpha_terms, 8.0);
}

TEST(HypercubeCostTest, PresetsExist) {
  const MachineParams ipsc = MachineParams::ipsc860();
  const MachineParams sunmos = MachineParams::sunmos();
  EXPECT_GT(ipsc.beta, MachineParams::paragon().beta);
  EXPECT_LT(sunmos.alpha, MachineParams::paragon().alpha);
}

}  // namespace
}  // namespace intercom
