// Chrome trace-event export: a traced run over all seven collectives must
// produce syntactically valid JSON with one track (tid) per node and the
// span nesting collective -> step -> wire on every track.  The test carries
// a small recursive-descent JSON parser so "valid" means parsed, not
// pattern-matched.
#include "intercom/obs/export.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <map>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "intercom/runtime/communicator.hpp"
#include "intercom/runtime/multicomputer.hpp"
#include "intercom/util/error.hpp"

namespace intercom {
namespace {

// ---------------------------------------------------------------------------
// Minimal JSON parser (objects, arrays, strings, numbers, literals).

struct JsonValue {
  enum class Type { kObject, kArray, kString, kNumber, kBool, kNull };
  Type type = Type::kNull;
  std::map<std::string, JsonValue> object;
  std::vector<JsonValue> array;
  std::string string;
  double number = 0.0;
  bool boolean = false;

  const JsonValue* find(const std::string& key) const {
    auto it = object.find(key);
    return it == object.end() ? nullptr : &it->second;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  JsonValue parse() {
    JsonValue v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& why) {
    throw std::runtime_error("JSON error at offset " + std::to_string(pos_) +
                             ": " + why);
  }
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }
  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end");
    return text_[pos_];
  }
  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }
  JsonValue parse_value() {
    skip_ws();
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return parse_string();
      case 't': case 'f': return parse_bool();
      case 'n': return parse_null();
      default: return parse_number();
    }
  }
  JsonValue parse_object() {
    JsonValue v;
    v.type = JsonValue::Type::kObject;
    expect('{');
    skip_ws();
    if (peek() == '}') { ++pos_; return v; }
    while (true) {
      skip_ws();
      JsonValue key = parse_string();
      skip_ws();
      expect(':');
      v.object.emplace(key.string, parse_value());
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      expect('}');
      return v;
    }
  }
  JsonValue parse_array() {
    JsonValue v;
    v.type = JsonValue::Type::kArray;
    expect('[');
    skip_ws();
    if (peek() == ']') { ++pos_; return v; }
    while (true) {
      v.array.push_back(parse_value());
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      expect(']');
      return v;
    }
  }
  JsonValue parse_string() {
    JsonValue v;
    v.type = JsonValue::Type::kString;
    expect('"');
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      char c = text_[pos_++];
      if (c == '"') return v;
      if (c == '\\') {
        if (pos_ >= text_.size()) fail("bad escape");
        char e = text_[pos_++];
        switch (e) {
          case '"': v.string += '"'; break;
          case '\\': v.string += '\\'; break;
          case '/': v.string += '/'; break;
          case 'n': v.string += '\n'; break;
          case 'r': v.string += '\r'; break;
          case 't': v.string += '\t'; break;
          case 'b': v.string += '\b'; break;
          case 'f': v.string += '\f'; break;
          case 'u': {
            if (pos_ + 4 > text_.size()) fail("bad \\u escape");
            for (int i = 0; i < 4; ++i) {
              if (!std::isxdigit(static_cast<unsigned char>(text_[pos_ + static_cast<std::size_t>(i)]))) {
                fail("bad \\u escape digit");
              }
            }
            pos_ += 4;
            v.string += '?';  // codepoint value irrelevant for these tests
            break;
          }
          default: fail("unknown escape");
        }
      } else {
        v.string += c;
      }
    }
  }
  JsonValue parse_bool() {
    JsonValue v;
    v.type = JsonValue::Type::kBool;
    if (text_.compare(pos_, 4, "true") == 0) {
      v.boolean = true;
      pos_ += 4;
    } else if (text_.compare(pos_, 5, "false") == 0) {
      pos_ += 5;
    } else {
      fail("bad literal");
    }
    return v;
  }
  JsonValue parse_null() {
    if (text_.compare(pos_, 4, "null") != 0) fail("bad literal");
    pos_ += 4;
    return JsonValue{};
  }
  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected number");
    JsonValue v;
    v.type = JsonValue::Type::kNumber;
    v.number = std::stod(text_.substr(start, pos_ - start));
    return v;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

// ---------------------------------------------------------------------------

constexpr int kRows = 2, kCols = 3;
constexpr std::size_t kElems = 96;

// One traced run exercising all seven regular collectives.
void run_all_seven(Multicomputer& mc) {
  mc.run_spmd([](Node& node) {
    Communicator world = node.world();
    std::vector<double> data(kElems, 1.0 + node.id());
    const std::span<double> span(data);
    world.broadcast(span, 0);
    world.scatter(span, 0);
    world.gather(span, 0);
    world.collect(span);
    world.reduce_sum(span, 0);
    world.all_reduce_sum(span);
    world.reduce_scatter_sum(span);
  });
}

struct Span {
  std::string cat;
  double ts, dur;
};

TEST(ChromeTraceExportTest, TracedSweepExportsValidNestedJson) {
  Multicomputer mc(Mesh2D(kRows, kCols));
  mc.set_tracing(true);
  run_all_seven(mc);
  mc.set_tracing(false);

  std::ostringstream os;
  export_chrome_trace(mc.tracer(), os);
  const std::string json = os.str();

  JsonValue root;
  ASSERT_NO_THROW(root = JsonParser(json).parse()) << json.substr(0, 400);
  ASSERT_EQ(root.type, JsonValue::Type::kObject);
  const JsonValue* events = root.find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->type, JsonValue::Type::kArray);

  const int p = kRows * kCols;
  std::set<int> span_tids, meta_tids;
  std::map<int, std::vector<Span>> spans_by_tid;
  for (const JsonValue& e : events->array) {
    ASSERT_EQ(e.type, JsonValue::Type::kObject);
    const JsonValue* ph = e.find("ph");
    ASSERT_NE(ph, nullptr);
    const JsonValue* tid = e.find("tid");
    ASSERT_NE(tid, nullptr);
    ASSERT_NE(e.find("name"), nullptr);
    ASSERT_NE(e.find("pid"), nullptr);
    if (ph->string == "M") {
      meta_tids.insert(static_cast<int>(tid->number));
      continue;
    }
    ASSERT_TRUE(ph->string == "X" || ph->string == "i")
        << "unexpected phase " << ph->string;
    ASSERT_NE(e.find("ts"), nullptr);
    ASSERT_NE(e.find("args"), nullptr);
    if (ph->string == "X") {
      const JsonValue* cat = e.find("cat");
      const JsonValue* dur = e.find("dur");
      ASSERT_NE(cat, nullptr);
      ASSERT_NE(dur, nullptr);
      span_tids.insert(static_cast<int>(tid->number));
      spans_by_tid[static_cast<int>(tid->number)].push_back(
          Span{cat->string, e.find("ts")->number, dur->number});
    }
  }
  // One thread-name metadata entry and at least one span per node track.
  EXPECT_EQ(static_cast<int>(meta_tids.size()), p);
  EXPECT_EQ(static_cast<int>(span_tids.size()), p);

  // Nesting on every track: wire within a step, step within a collective,
  // collective within the run span.
  const double eps = 1e-6;
  auto contained_in = [&](const Span& inner, const std::string& outer_cat,
                          const std::vector<Span>& spans) {
    return std::any_of(spans.begin(), spans.end(), [&](const Span& outer) {
      return outer.cat == outer_cat && outer.ts <= inner.ts + eps &&
             inner.ts + inner.dur <= outer.ts + outer.dur + eps;
    });
  };
  for (const auto& [tid, spans] : spans_by_tid) {
    int collectives = 0, steps = 0, wires = 0;
    for (const Span& s : spans) {
      if (s.cat == "collective") {
        ++collectives;
        EXPECT_TRUE(contained_in(s, "run", spans)) << "tid " << tid;
      } else if (s.cat == "step") {
        ++steps;
        EXPECT_TRUE(contained_in(s, "collective", spans)) << "tid " << tid;
      } else if (s.cat == "wire") {
        ++wires;
        EXPECT_TRUE(contained_in(s, "step", spans)) << "tid " << tid;
      }
    }
    EXPECT_EQ(collectives, 7) << "tid " << tid;
    EXPECT_GT(steps, 0) << "tid " << tid;
    EXPECT_GT(wires, 0) << "tid " << tid;
  }
}

TEST(ChromeTraceExportTest, EmptyTraceIsStillValidJson) {
  Tracer tracer(3);
  std::ostringstream os;
  export_chrome_trace(tracer, os);
  JsonValue root;
  ASSERT_NO_THROW(root = JsonParser(os.str()).parse());
  const JsonValue* events = root.find("traceEvents");
  ASSERT_NE(events, nullptr);
  EXPECT_EQ(events->array.size(), 3u);  // the three thread_name entries
}

TEST(ChromeTraceExportTest, ErrorLabelsAreEscaped) {
  Multicomputer mc(Mesh2D(1, 2));
  mc.set_tracing(true);
  EXPECT_THROW(mc.run_spmd([](Node& node) {
                 if (node.id() == 1) {
                   throw Error("bad \"quoted\"\npayload\t\\slash");
                 }
                 Communicator world = node.world();
                 std::vector<double> data(8, 0.0);
                 world.broadcast(std::span<double>(data), 1);
               }),
               Error);
  mc.set_tracing(false);
  std::ostringstream os;
  export_chrome_trace(mc.tracer(), os);
  JsonValue root;
  ASSERT_NO_THROW(root = JsonParser(os.str()).parse()) << os.str();
  // The error instant survives with its (escaped) message.
  bool saw_error = false;
  for (const JsonValue& e : root.find("traceEvents")->array) {
    const JsonValue* args = e.find("args");
    if (args == nullptr) continue;
    const JsonValue* kind = args->find("kind");
    if (kind != nullptr && kind->string == "error") saw_error = true;
  }
  EXPECT_TRUE(saw_error);
}

TEST(TextSummaryTest, ListsNodesKindsAndMetrics) {
  Multicomputer mc(Mesh2D(1, 3));
  mc.set_tracing(true);
  mc.run_spmd([](Node& node) {
    Communicator world = node.world();
    std::vector<double> data(32, 1.0);
    world.all_reduce_sum(std::span<double>(data));
  });
  mc.set_tracing(false);
  std::ostringstream os;
  export_text_summary(mc.tracer(), &mc.metrics(), os);
  const std::string text = os.str();
  EXPECT_NE(text.find("3 nodes"), std::string::npos);
  EXPECT_NE(text.find("collective="), std::string::npos);
  EXPECT_NE(text.find("transport.sends"), std::string::npos);
  EXPECT_NE(text.find("collective.ns"), std::string::npos);
}

TEST(TextSummaryTest, NeverArmedTracerSaysSo) {
  Tracer tracer(2);
  std::ostringstream os;
  export_text_summary(tracer, nullptr, os);
  EXPECT_NE(os.str().find("never armed"), std::string::npos);
}

}  // namespace
}  // namespace intercom
