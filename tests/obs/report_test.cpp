// Model-vs-measured reporting: predicted times in the report must come from
// intercom::analyze() on the schedule the run actually executed, and the
// join must aggregate repeated calls (plan-cache hits) into one row.
#include "intercom/obs/report.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <sstream>
#include <vector>

#include "intercom/collective.hpp"
#include "intercom/ir/analysis.hpp"
#include "intercom/runtime/communicator.hpp"
#include "intercom/runtime/multicomputer.hpp"
#include "intercom/topo/group.hpp"
#include "intercom/util/error.hpp"

namespace intercom {
namespace {

constexpr int kRows = 2, kCols = 3;
constexpr std::size_t kElems = 120;

Collective collective_from_name(const std::string& name) {
  for (Collective c :
       {Collective::kBroadcast, Collective::kScatter, Collective::kGather,
        Collective::kCollect, Collective::kCombineToOne,
        Collective::kCombineToAll, Collective::kDistributedCombine}) {
    if (to_string(c) == name) return c;
  }
  throw Error("unknown collective name: " + name);
}

// Runs every regular collective twice: the second call hits the plan cache.
void run_sweep_twice(Multicomputer& mc) {
  mc.run_spmd([](Node& node) {
    Communicator world = node.world();
    std::vector<double> data(kElems, 1.0 + node.id());
    const std::span<double> span(data);
    for (int pass = 0; pass < 2; ++pass) {
      world.broadcast(span, 0);
      world.scatter(span, 0);
      world.gather(span, 0);
      world.collect(span);
      world.reduce_sum(span, 0);
      world.all_reduce_sum(span);
      world.reduce_scatter_sum(span);
    }
  });
}

TEST(ModelVsMeasuredTest, JoinsAllSevenCollectivesAgainstAnalyze) {
  Multicomputer mc(Mesh2D(kRows, kCols));
  mc.set_tracing(true);
  run_sweep_twice(mc);
  mc.set_tracing(false);

  const auto rows = model_vs_measured(mc.tracer());
  const std::set<std::string> expected = {
      "broadcast",      "scatter",        "gather",
      "collect",        "combine-to-one", "combine-to-all",
      "distributed-combine"};
  std::set<std::string> seen;
  for (const auto& row : rows) seen.insert(row.collective);
  EXPECT_EQ(seen, expected);

  const Group world_group = Group::contiguous(mc.node_count());
  for (const auto& row : rows) {
    SCOPED_TRACE(row.collective);
    EXPECT_EQ(row.elems, kElems);
    EXPECT_EQ(row.bytes, kElems * sizeof(double));
    EXPECT_EQ(row.calls, 2u);
    EXPECT_EQ(row.cache_hits, 1u);  // second pass reuses the cached plan
    EXPECT_GT(row.measured_mean_s, 0.0);
    EXPECT_GE(row.measured_max_s, row.measured_mean_s);
    EXPECT_GT(row.predicted_s, 0.0);
    EXPECT_GT(row.ratio, 0.0);
    EXPECT_DOUBLE_EQ(row.ratio, row.measured_mean_s / row.predicted_s);

    // The prediction must be analyze() on the schedule the run executed:
    // re-plan the same shape and compare (the planner is deterministic).
    const Collective collective = collective_from_name(row.collective);
    const Schedule replanned = mc.planner().plan(collective, world_group,
                                                 kElems, sizeof(double), 0);
    const double expected_s =
        analyze(replanned, mc.planner().params()).critical_seconds;
    EXPECT_NEAR(row.predicted_s, expected_s, expected_s * 1e-6 + 2e-9);
  }
}

TEST(ModelVsMeasuredTest, EmptyTraceYieldsNoRows) {
  Tracer tracer(4);
  EXPECT_TRUE(model_vs_measured(tracer).empty());
}

TEST(ModelVsMeasuredTest, RenderListsEveryRowAndHeader) {
  Multicomputer mc(Mesh2D(1, 4));
  mc.set_tracing(true);
  mc.run_spmd([](Node& node) {
    Communicator world = node.world();
    std::vector<float> data(64, 1.0f);
    world.broadcast(std::span<float>(data), 0);
  });
  mc.set_tracing(false);

  const auto rows = model_vs_measured(mc.tracer());
  std::ostringstream os;
  render_model_vs_measured(rows, os);
  const std::string text = os.str();
  EXPECT_NE(text.find("collective"), std::string::npos);
  EXPECT_NE(text.find("predicted"), std::string::npos);
  EXPECT_NE(text.find("measured"), std::string::npos);
  EXPECT_NE(text.find("broadcast"), std::string::npos);
}

TEST(ModelVsMeasuredTest, VVariantsAreTracedAndReported) {
  // The irregular collectives bypass the plan cache; their predictions are
  // recomputed per call (never memoized — stack-temporary schedules) but
  // they still land in the report with measurements.
  Multicomputer mc(Mesh2D(1, 3));
  mc.set_tracing(true);
  mc.run_spmd([](Node& node) {
    Communicator world = node.world();
    std::vector<double> data(12, 1.0);
    world.collectv(std::span<double>(data), {6, 4, 2});
  });
  mc.set_tracing(false);

  const auto rows = model_vs_measured(mc.tracer());
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].collective, "collectv");
  EXPECT_EQ(rows[0].calls, 1u);
  EXPECT_GT(rows[0].measured_mean_s, 0.0);
}

TEST(ModelVsMeasuredTest, PredictionMemoSurvivesCacheEviction) {
  // Regression: the prediction memo used to be keyed by Schedule address.
  // With a capacity-1 plan cache cycling two shapes, every call evicts the
  // other shape's schedule and the allocator is free to reuse the address —
  // the memo then served shape A's prediction for shape B.  Keyed by plan
  // shape, each row must match analyze() of its own schedule.
  Multicomputer mc(Mesh2D(1, 4));
  constexpr std::size_t kSmall = 16, kLarge = 8192;
  mc.set_tracing(true);
  mc.run_spmd([](Node& node) {
    Communicator world = node.world();
    world.set_plan_cache_capacity(1);
    std::vector<double> small(kSmall, 1.0);
    std::vector<double> large(kLarge, 1.0);
    for (int round = 0; round < 3; ++round) {
      world.broadcast(std::span<double>(small), 0);  // evicts large's plan
      world.broadcast(std::span<double>(large), 0);  // evicts small's plan
    }
  });
  mc.set_tracing(false);

  const auto rows = model_vs_measured(mc.tracer());
  ASSERT_EQ(rows.size(), 2u);
  const Group world_group = Group::contiguous(mc.node_count());
  for (const auto& row : rows) {
    SCOPED_TRACE(row.elems);
    EXPECT_EQ(row.calls, 3u);
    const Schedule replanned =
        mc.planner().plan(Collective::kBroadcast, world_group, row.elems,
                          sizeof(double), 0);
    const double expected_s =
        analyze(replanned, mc.planner().params()).critical_seconds;
    EXPECT_NEAR(row.predicted_s, expected_s, expected_s * 1e-6 + 2e-9)
        << "memoized prediction belongs to a different shape";
  }
  // The two shapes' predictions genuinely differ, so a cross-served memo
  // cannot hide inside the tolerance.
  EXPECT_GT(std::abs(rows[0].predicted_s - rows[1].predicted_s),
            rows[0].predicted_s * 1e-3);
}

TEST(ModelVsMeasuredTest, AsyncCollectivesJoinWithAsyncCount) {
  Multicomputer mc(Mesh2D(1, 4));
  mc.set_tracing(true);
  mc.run_spmd([](Node& node) {
    Communicator world = node.world();
    std::vector<double> data(kElems, 1.0 + node.id());
    world.all_reduce_sum(std::span<double>(data));        // blocking instance
    world.iall_reduce_sum(std::span<double>(data)).wait();  // async instance
  });
  mc.set_tracing(false);

  const auto rows = model_vs_measured(mc.tracer());
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].calls, 2u);
  EXPECT_EQ(rows[0].async_calls, 1u);
  EXPECT_EQ(rows[0].errors, 0u);
  EXPECT_GT(rows[0].predicted_s, 0.0);

  // The async instance also left an issue marker on every node.
  std::uint64_t issues = 0;
  for (int node = 0; node < mc.tracer().node_count(); ++node) {
    const NodeTraceBuffer* buffer = mc.tracer().buffer(node);
    if (buffer == nullptr) continue;
    for (const TraceEvent& e : buffer->events()) {
      if (e.kind == EventKind::kAsyncIssue) ++issues;
    }
  }
  EXPECT_EQ(issues, static_cast<std::uint64_t>(mc.node_count()));
}

TEST(ModelVsMeasuredTest, RowsCarryTheFabricAndGroupByIt) {
  // Same workload on the ideal wire and on the simulated fabric: merged
  // reporting must keep one row per (shape, fabric) instead of averaging
  // two different machines together.
  auto run = [](Multicomputer& mc) {
    mc.set_tracing(true);
    mc.run_spmd([](Node& node) {
      std::vector<double> data(64, node.id() == 0 ? 3.0 : 0.0);
      node.world().broadcast(std::span<double>(data), 0);
    });
    mc.set_tracing(false);
  };
  Multicomputer inproc(Mesh2D(1, 4));
  run(inproc);
  FabricSpec sim_spec;
  sim_spec.name = "sim";
  sim_spec.sim.time_scale = 0.0;
  Multicomputer sim(Mesh2D(1, 4), MachineParams::paragon(), sim_spec);
  run(sim);

  const auto inproc_rows = model_vs_measured(inproc.tracer());
  ASSERT_EQ(inproc_rows.size(), 1u);
  EXPECT_EQ(inproc_rows[0].fabric, "inproc");

  const auto merged =
      model_vs_measured({&inproc.tracer(), &sim.tracer()});
  ASSERT_EQ(merged.size(), 2u);
  EXPECT_EQ(merged[0].collective, merged[1].collective);
  EXPECT_NE(merged[0].fabric, merged[1].fabric);
  for (const auto& row : merged) EXPECT_EQ(row.calls, 1u);

  std::ostringstream os;
  render_model_vs_measured(merged, os);
  const std::string text = os.str();
  EXPECT_NE(text.find("fabric"), std::string::npos);
  EXPECT_NE(text.find("sim"), std::string::npos);
  EXPECT_NE(text.find("inproc"), std::string::npos);
}

TEST(ModelVsMeasuredTest, ThreeWayReportJoinsModelSimAndInproc) {
  const std::size_t elems = 2048;
  auto run = [&](Multicomputer& mc) {
    mc.set_tracing(true);
    mc.run_spmd([&](Node& node) {
      Communicator world = node.world();
      std::vector<double> data(elems, 1.0 + node.id());
      world.broadcast(std::span<double>(data), 0);
      world.all_reduce_sum(std::span<double>(data));
    });
    mc.set_tracing(false);
  };
  Multicomputer inproc(Mesh2D(1, 4));
  run(inproc);
  FabricSpec sim_spec;
  sim_spec.name = "sim";
  sim_spec.sim.time_scale = 0.0;
  Multicomputer sim(Mesh2D(1, 4), MachineParams::paragon(), sim_spec);
  run(sim);

  const auto rows = three_way_report(inproc.tracer(), sim.tracer());
  ASSERT_EQ(rows.size(), 2u);  // broadcast + combine-to-all
  for (const auto& row : rows) {
    SCOPED_TRACE(row.collective);
    EXPECT_EQ(row.elems, elems);
    EXPECT_GT(row.predicted_s, 0.0);
    EXPECT_GT(row.sim_s, 0.0);
    EXPECT_GT(row.inproc_s, 0.0);
    EXPECT_GT(row.sim_ratio, 0.0);
    EXPECT_GT(row.inproc_ratio, 0.0);
  }

  std::ostringstream os;
  render_three_way(rows, os);
  const std::string text = os.str();
  EXPECT_NE(text.find("model"), std::string::npos);
  EXPECT_NE(text.find("sim"), std::string::npos);
  EXPECT_NE(text.find("inproc"), std::string::npos);
  EXPECT_NE(text.find("broadcast"), std::string::npos);
}

}  // namespace
}  // namespace intercom
