#include "intercom/obs/metrics.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <thread>
#include <vector>

namespace intercom {
namespace {

TEST(CounterTest, IncrementsAndResets) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(HistogramTest, BucketsByBitWidth) {
  Histogram h;
  h.observe(0);    // bucket 0
  h.observe(1);    // bucket 1: [1, 2)
  h.observe(2);    // bucket 2: [2, 4)
  h.observe(3);    // bucket 2
  h.observe(4);    // bucket 3: [4, 8)
  h.observe(255);  // bucket 8: [128, 256)
  EXPECT_EQ(h.bucket(0), 1u);
  EXPECT_EQ(h.bucket(1), 1u);
  EXPECT_EQ(h.bucket(2), 2u);
  EXPECT_EQ(h.bucket(3), 1u);
  EXPECT_EQ(h.bucket(8), 1u);
  EXPECT_EQ(h.count(), 6u);
  EXPECT_EQ(h.sum(), 265u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 255u);
  EXPECT_DOUBLE_EQ(h.mean(), 265.0 / 6.0);
}

TEST(HistogramTest, EmptyIsAllZero) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.quantile_upper(0.5), 0u);
}

TEST(HistogramTest, QuantileUpperIsBucketResolution) {
  Histogram h;
  for (int i = 0; i < 90; ++i) h.observe(3);     // bucket 2, upper edge 3
  for (int i = 0; i < 10; ++i) h.observe(1000);  // bucket 10, upper edge 1023
  EXPECT_EQ(h.quantile_upper(0.5), 3u);
  EXPECT_EQ(h.quantile_upper(0.99), 1023u);
  EXPECT_EQ(h.quantile_upper(1.0), 1023u);
}

TEST(HistogramTest, BucketUpperEdges) {
  EXPECT_EQ(Histogram::bucket_upper(0), 0u);
  EXPECT_EQ(Histogram::bucket_upper(1), 1u);
  EXPECT_EQ(Histogram::bucket_upper(3), 7u);
  EXPECT_EQ(Histogram::bucket_upper(64), ~0ULL);
}

TEST(HistogramTest, ConcurrentObservationsAllCounted) {
  Histogram h;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h] {
      for (int i = 0; i < kPerThread; ++i) {
        h.observe(static_cast<std::uint64_t>(i));
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(h.count(), static_cast<std::uint64_t>(kThreads * kPerThread));
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), static_cast<std::uint64_t>(kPerThread - 1));
}

TEST(MetricsRegistryTest, HandlesAreStableByName) {
  MetricsRegistry registry;
  Counter& a = registry.counter("x");
  a.inc();
  EXPECT_EQ(&registry.counter("x"), &a);
  EXPECT_EQ(registry.counter("x").value(), 1u);
  Histogram& h = registry.histogram("y");
  EXPECT_EQ(&registry.histogram("y"), &h);
  EXPECT_NE(static_cast<void*>(&registry.counter("y")),
            static_cast<void*>(&h));  // counters and histograms are separate
}

TEST(MetricsRegistryTest, SnapshotIsNameSorted) {
  MetricsRegistry registry;
  registry.counter("zeta").inc(3);
  registry.counter("alpha").inc(1);
  registry.histogram("latency").observe(7);
  const auto snap = registry.snapshot();
  ASSERT_EQ(snap.counters.size(), 2u);
  EXPECT_EQ(snap.counters[0].name, "alpha");
  EXPECT_EQ(snap.counters[0].value, 1u);
  EXPECT_EQ(snap.counters[1].name, "zeta");
  ASSERT_EQ(snap.histograms.size(), 1u);
  EXPECT_EQ(snap.histograms[0].count, 1u);
  EXPECT_EQ(snap.histograms[0].max, 7u);
}

TEST(MetricsRegistryTest, RenderTextListsEveryMetric) {
  MetricsRegistry registry;
  registry.counter("transport.sends").inc(12);
  registry.histogram("transport.send.ns").observe(512);
  std::ostringstream os;
  registry.render_text(os);
  const std::string text = os.str();
  EXPECT_NE(text.find("transport.sends"), std::string::npos);
  EXPECT_NE(text.find("12"), std::string::npos);
  EXPECT_NE(text.find("transport.send.ns"), std::string::npos);
}

TEST(MetricsRegistryTest, ResetZeroesButKeepsHandles) {
  MetricsRegistry registry;
  Counter& c = registry.counter("c");
  Histogram& h = registry.histogram("h");
  c.inc(5);
  h.observe(9);
  registry.reset();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(&registry.counter("c"), &c);
  h.observe(3);
  EXPECT_EQ(h.min(), 3u);  // min tracking restarts after reset
}

}  // namespace
}  // namespace intercom
