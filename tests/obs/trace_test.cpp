#include "intercom/obs/trace.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "intercom/util/error.hpp"

namespace intercom {
namespace {

TraceEvent send_event(std::uint64_t start, std::uint64_t bytes) {
  TraceEvent e;
  e.kind = EventKind::kSend;
  e.start_ns = start;
  e.end_ns = start + 10;
  e.bytes = bytes;
  return e;
}

TEST(NodeTraceBufferTest, RecordsAndReturnsEventsOldestFirst) {
  NodeTraceBuffer buffer(8);
  for (std::uint64_t i = 0; i < 5; ++i) buffer.record(send_event(i, 100 + i));
  EXPECT_EQ(buffer.recorded(), 5u);
  EXPECT_EQ(buffer.retained(), 5u);
  EXPECT_EQ(buffer.dropped(), 0u);
  const auto events = buffer.events();
  ASSERT_EQ(events.size(), 5u);
  for (std::uint64_t i = 0; i < 5; ++i) {
    EXPECT_EQ(events[i].start_ns, i);
    EXPECT_EQ(events[i].bytes, 100 + i);
  }
}

TEST(NodeTraceBufferTest, WrapsAroundKeepingNewestAndCountsDrops) {
  NodeTraceBuffer buffer(4);
  for (std::uint64_t i = 0; i < 11; ++i) buffer.record(send_event(i, i));
  EXPECT_EQ(buffer.recorded(), 11u);
  EXPECT_EQ(buffer.retained(), 4u);
  EXPECT_EQ(buffer.dropped(), 7u);
  const auto events = buffer.events();
  ASSERT_EQ(events.size(), 4u);
  // Events 7..10 survive, oldest first.
  for (std::uint64_t i = 0; i < 4; ++i) EXPECT_EQ(events[i].start_ns, 7 + i);
}

TEST(NodeTraceBufferTest, TailReturnsLastN) {
  NodeTraceBuffer buffer(16);
  for (std::uint64_t i = 0; i < 10; ++i) buffer.record(send_event(i, i));
  const auto tail = buffer.tail(3);
  ASSERT_EQ(tail.size(), 3u);
  EXPECT_EQ(tail[0].start_ns, 7u);
  EXPECT_EQ(tail[2].start_ns, 9u);
  EXPECT_EQ(buffer.tail(100).size(), 10u);
  EXPECT_TRUE(NodeTraceBuffer(4).tail(2).empty());
}

TEST(NodeTraceBufferTest, ClearRestartsNumbering) {
  NodeTraceBuffer buffer(4);
  for (std::uint64_t i = 0; i < 6; ++i) buffer.record(send_event(i, i));
  buffer.clear();
  EXPECT_EQ(buffer.recorded(), 0u);
  EXPECT_TRUE(buffer.events().empty());
  buffer.record(send_event(42, 1));
  const auto events = buffer.events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].start_ns, 42u);
}

// A live reader racing a wrapping writer must never see torn events: every
// returned event is one the writer actually recorded.  (Under TSan this
// also proves the seqlock-style read path is data-race-free.)
TEST(NodeTraceBufferTest, ConcurrentTailReadsSeeOnlyPublishedEvents) {
  NodeTraceBuffer buffer(8);
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    for (std::uint64_t i = 0; i < 20000 && !stop.load(); ++i) {
      // start_ns and bytes are kept consistent; a torn read would break it.
      buffer.record(send_event(i, i * 3 + 7));
    }
    stop.store(true);
  });
  std::uint64_t observed = 0;
  while (!stop.load()) {
    for (const TraceEvent& e : buffer.tail(4)) {
      ASSERT_EQ(e.bytes, e.start_ns * 3 + 7)
          << "torn event at start_ns=" << e.start_ns;
      ++observed;
    }
  }
  writer.join();
  // One more read after the join: by now the tail is stable and full, so
  // the validation definitely ran even if the writer outpaced the loop.
  const auto tail = buffer.tail(4);
  ASSERT_EQ(tail.size(), 4u);
  for (const TraceEvent& e : tail) {
    ASSERT_EQ(e.bytes, e.start_ns * 3 + 7);
    ++observed;
  }
  EXPECT_GT(observed, 0u);
}

TEST(TracerTest, DisarmedRecordIsDropped) {
  Tracer tracer(2);
  tracer.record(0, send_event(1, 1));
  EXPECT_EQ(tracer.buffer(0), nullptr);  // never armed, no buffers
  tracer.arm();
  tracer.disarm();
  tracer.record(0, send_event(1, 1));
  ASSERT_NE(tracer.buffer(0), nullptr);
  EXPECT_EQ(tracer.buffer(0)->recorded(), 0u);
}

TEST(TracerTest, ArmClearsPreviousRunAndStampsNodeIds) {
  Tracer tracer(3, 16);
  tracer.arm();
  tracer.record(1, send_event(5, 5));
  tracer.arm();  // second run
  EXPECT_EQ(tracer.buffer(1)->recorded(), 0u);
  tracer.record(2, send_event(9, 9));
  const auto events = tracer.buffer(2)->events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].node, 2);
}

TEST(TracerTest, InternIsStableAndIdempotent) {
  Tracer tracer(1);
  const std::uint32_t a = tracer.intern("broadcast");
  const std::uint32_t b = tracer.intern("collect");
  EXPECT_NE(a, b);
  EXPECT_EQ(tracer.intern("broadcast"), a);
  EXPECT_EQ(tracer.label_text(a), "broadcast");
  EXPECT_EQ(tracer.label_text(0), "");
  EXPECT_EQ(tracer.label_text(9999), "?");
}

TEST(TracerTest, DescribeNamesKindAndCoordinates) {
  Tracer tracer(1);
  tracer.arm();
  TraceEvent e = send_event(10, 64);
  e.peer = 3;
  e.ctx = 77;
  e.tag = 5;
  e.seq = 2;
  const std::string text = tracer.describe(e);
  EXPECT_NE(text.find("send"), std::string::npos);
  EXPECT_NE(text.find("peer=3"), std::string::npos);
  EXPECT_NE(text.find("ctx=77"), std::string::npos);
  EXPECT_NE(text.find("bytes=64"), std::string::npos);
}

TEST(TracerTest, RejectsOutOfRangeNode) {
  Tracer tracer(2);
  tracer.arm();
  EXPECT_THROW(tracer.record(2, send_event(0, 0)), Error);
  EXPECT_THROW(tracer.record(-1, send_event(0, 0)), Error);
}

TEST(TracerTest, NowNsIsMonotonicFromArmEpoch) {
  Tracer tracer(1);
  tracer.arm();
  const std::uint64_t a = tracer.now_ns();
  const std::uint64_t b = tracer.now_ns();
  EXPECT_LE(a, b);
}

}  // namespace
}  // namespace intercom
