#include "intercom/core/plan_cache.hpp"

#include <gtest/gtest.h>

#include "intercom/runtime/communicator.hpp"

namespace intercom {
namespace {

Schedule dummy(const char* name) {
  Schedule s;
  s.set_algorithm(name);
  return s;
}

TEST(PlanCacheTest, MissThenHit) {
  PlanCache cache(4);
  const PlanCache::Key key{Collective::kBroadcast, 100, 8, 0};
  EXPECT_EQ(cache.find(key), nullptr);
  EXPECT_EQ(cache.misses(), 1u);
  const auto inserted = cache.insert(key, dummy("a")).schedule;
  PlanCache::CachedPlan* found = cache.find(key);
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->schedule.get(), inserted.get());
  EXPECT_EQ(found->compiled, nullptr);  // attached lazily by the runtime
  EXPECT_EQ(cache.hits(), 1u);
}

TEST(PlanCacheTest, DistinctKeysDistinctEntries) {
  PlanCache cache(4);
  const PlanCache::Key a{Collective::kBroadcast, 100, 8, 0};
  const PlanCache::Key b{Collective::kBroadcast, 100, 8, 1};  // other root
  const PlanCache::Key c{Collective::kCollect, 100, 8, 0};
  cache.insert(a, dummy("a"));
  cache.insert(b, dummy("b"));
  cache.insert(c, dummy("c"));
  EXPECT_EQ(cache.size(), 3u);
  EXPECT_EQ(cache.find(a)->schedule->algorithm(), "a");
  EXPECT_EQ(cache.find(b)->schedule->algorithm(), "b");
  EXPECT_EQ(cache.find(c)->schedule->algorithm(), "c");
}

TEST(PlanCacheTest, CapacityBounded) {
  PlanCache cache(2);
  for (std::size_t n = 0; n < 10; ++n) {
    cache.insert(PlanCache::Key{Collective::kBroadcast, n, 8, 0},
                 dummy("x"));
  }
  EXPECT_LE(cache.size(), 2u);
}

TEST(PlanCacheTest, ZeroCapacityDisables) {
  PlanCache cache(0);
  const PlanCache::Key key{Collective::kBroadcast, 1, 1, 0};
  PlanCache::CachedPlan& entry = cache.insert(key, dummy("a"));
  EXPECT_NE(entry.schedule, nullptr);  // caller still gets the schedule
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.find(key), nullptr);
}

TEST(PlanCacheTest, CommunicatorReusesPlans) {
  Multicomputer mc(Mesh2D(1, 4));
  mc.run_spmd([&](Node& node) {
    Communicator world = node.world();
    std::vector<double> v(64, 1.0);
    for (int i = 0; i < 5; ++i) {
      world.all_reduce_sum(std::span<double>(v));
    }
    // One miss (first call), four hits.
    ASSERT_EQ(world.plan_cache().misses(), 1u);
    ASSERT_EQ(world.plan_cache().hits(), 4u);
  });
}

TEST(PlanCacheTest, CachedPlansStayCorrect) {
  Multicomputer mc(Mesh2D(1, 4));
  mc.run_spmd([&](Node& node) {
    Communicator world = node.world();
    for (int round = 1; round <= 3; ++round) {
      std::vector<int> v{world.rank() + round};
      world.all_reduce_sum(std::span<int>(v));
      // Sum over r of (r + round) = 6 + 4*round.
      ASSERT_EQ(v[0], 6 + 4 * round);
    }
  });
}

}  // namespace
}  // namespace intercom
