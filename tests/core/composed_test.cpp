// Section 5 composed algorithm tests: each short-/long-vector composition
// delivers the Table 1 semantics.
#include <gtest/gtest.h>

#include "intercom/core/algorithms.hpp"
#include "intercom/ir/validate.hpp"
#include "testing/reference.hpp"

namespace intercom {
namespace {

using testing::RefExec;

class ComposedP : public ::testing::TestWithParam<int> {};

TEST_P(ComposedP, LongBroadcastDelivers) {
  const int p = GetParam();
  const std::size_t elems = 50;
  Schedule s;
  planner::Ctx ctx{s, sizeof(double)};
  planner::long_broadcast(ctx, Group::contiguous(p), ElemRange{0, elems}, 0);
  validate_or_throw(s);
  RefExec<double> exec(s);
  for (std::size_t i = 0; i < elems; ++i) exec.user(0)[i] = i + 0.25;
  exec.run();
  for (int r = 0; r < p; ++r) {
    for (std::size_t i = 0; i < elems; ++i) {
      EXPECT_DOUBLE_EQ(exec.user(r)[i], i + 0.25);
    }
  }
}

TEST_P(ComposedP, ShortCollectDelivers) {
  const int p = GetParam();
  const std::size_t elems = 40;
  const Group g = Group::contiguous(p);
  Schedule s;
  planner::Ctx ctx{s, sizeof(double)};
  planner::short_collect(ctx, g, ElemRange{0, elems});
  validate_or_throw(s);
  RefExec<double> exec(s);
  const auto pieces = block_partition(ElemRange{0, elems}, p);
  for (int r = 0; r < p; ++r) {
    const auto piece = pieces[static_cast<std::size_t>(r)];
    for (std::size_t i = piece.lo; i < piece.hi; ++i) {
      exec.user(r)[i] = 7.0 * r + static_cast<double>(i);
    }
  }
  exec.run();
  for (int r = 0; r < p; ++r) {
    for (int owner = 0; owner < p; ++owner) {
      const auto piece = pieces[static_cast<std::size_t>(owner)];
      for (std::size_t i = piece.lo; i < piece.hi; ++i) {
        EXPECT_DOUBLE_EQ(exec.user(r)[i], 7.0 * owner + static_cast<double>(i));
      }
    }
  }
}

TEST_P(ComposedP, LongCombineToOneSums) {
  const int p = GetParam();
  const std::size_t elems = 33;
  const int root = p - 1;
  Schedule s;
  planner::Ctx ctx{s, sizeof(double)};
  planner::long_combine_to_one(ctx, Group::contiguous(p), ElemRange{0, elems},
                               root);
  validate_or_throw(s);
  RefExec<double> exec(s);
  for (int r = 0; r < p; ++r) {
    for (std::size_t i = 0; i < elems; ++i) exec.user(r)[i] = r + 1.0;
  }
  exec.run();
  for (std::size_t i = 0; i < elems; ++i) {
    EXPECT_DOUBLE_EQ(exec.user(root)[i], p * (p + 1) / 2.0);
  }
}

TEST_P(ComposedP, ShortCombineToAllSumsEverywhere) {
  const int p = GetParam();
  const std::size_t elems = 11;
  Schedule s;
  planner::Ctx ctx{s, sizeof(double)};
  planner::short_combine_to_all(ctx, Group::contiguous(p),
                                ElemRange{0, elems});
  validate_or_throw(s);
  RefExec<double> exec(s);
  for (int r = 0; r < p; ++r) {
    for (std::size_t i = 0; i < elems; ++i) {
      exec.user(r)[i] = (r + 1.0) * (i + 1.0);
    }
  }
  exec.run();
  for (int r = 0; r < p; ++r) {
    for (std::size_t i = 0; i < elems; ++i) {
      EXPECT_DOUBLE_EQ(exec.user(r)[i], p * (p + 1) / 2.0 * (i + 1.0));
    }
  }
}

TEST_P(ComposedP, LongCombineToAllSumsEverywhere) {
  const int p = GetParam();
  const std::size_t elems = 64;
  Schedule s;
  planner::Ctx ctx{s, sizeof(double)};
  planner::long_combine_to_all(ctx, Group::contiguous(p), ElemRange{0, elems});
  validate_or_throw(s);
  RefExec<double> exec(s);
  for (int r = 0; r < p; ++r) {
    for (std::size_t i = 0; i < elems; ++i) exec.user(r)[i] = r * 2.0 + 1.0;
  }
  exec.run();
  // Sum of (2r + 1) over r in [0, p) = p^2.
  for (int r = 0; r < p; ++r) {
    for (std::size_t i = 0; i < elems; ++i) {
      EXPECT_DOUBLE_EQ(exec.user(r)[i], static_cast<double>(p) * p);
    }
  }
}

TEST_P(ComposedP, ShortDistributedCombineLeavesPieces) {
  const int p = GetParam();
  const std::size_t elems = 27;
  Schedule s;
  planner::Ctx ctx{s, sizeof(double)};
  planner::short_distributed_combine(ctx, Group::contiguous(p),
                                     ElemRange{0, elems});
  validate_or_throw(s);
  RefExec<double> exec(s);
  for (int r = 0; r < p; ++r) {
    for (std::size_t i = 0; i < elems; ++i) exec.user(r)[i] = 1.0;
  }
  exec.run();
  const auto pieces = block_partition(ElemRange{0, elems}, p);
  for (int r = 0; r < p; ++r) {
    const auto piece = pieces[static_cast<std::size_t>(r)];
    for (std::size_t i = piece.lo; i < piece.hi; ++i) {
      EXPECT_DOUBLE_EQ(exec.user(r)[i], static_cast<double>(p));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, ComposedP,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 16, 30));

}  // namespace
}  // namespace intercom
