// Planner facade tests: auto-selection picks the right regime, forced
// strategies are honored, schedules carry metadata, mesh-aligned candidates
// appear for rectangular submesh groups.
#include <gtest/gtest.h>

#include "intercom/core/planner.hpp"
#include "intercom/ir/validate.hpp"
#include "intercom/topo/submesh.hpp"
#include "intercom/util/error.hpp"

namespace intercom {
namespace {

TEST(PlannerTest, ShortVectorsPickMst) {
  const Planner planner(MachineParams::paragon());
  const Group g = Group::contiguous(30);
  const auto strat = planner.select_strategy(Collective::kBroadcast, g, 8);
  EXPECT_EQ(strat.label(), "1x30,M");
}

TEST(PlannerTest, LongVectorsPickBandwidthOptimizedStrategy) {
  const Planner planner(MachineParams::paragon());
  const Group g = Group::contiguous(30);
  const auto strat =
      planner.select_strategy(Collective::kBroadcast, g, 1 << 20);
  // Must not be the pure MST algorithm; its beta term is ceil(log p) n.
  EXPECT_NE(strat.label(), "1x30,M");
  const double mst = planner
                         .predict(Collective::kBroadcast,
                                  HybridStrategy{{30}, InnerAlg::kShortVector,
                                                 false},
                                  1 << 20)
                         .seconds(planner.params());
  const double chosen = planner.predict(Collective::kBroadcast, strat, 1 << 20)
                            .seconds(planner.params());
  EXPECT_LT(chosen, mst);
}

TEST(PlannerTest, MediumVectorsMayPickTrueHybrids) {
  // Around the crossover the winning strategies are the multi-dimensional
  // hybrids; verify the selected one beats both pure algorithms.
  const Planner planner(MachineParams::paragon());
  const Group g = Group::contiguous(30);
  for (std::size_t n : {1024u, 4096u, 16384u}) {
    const auto strat = planner.select_strategy(Collective::kBroadcast, g, n);
    const double chosen =
        planner.predict(Collective::kBroadcast, strat, n).seconds(
            planner.params());
    for (const auto& pure :
         {HybridStrategy{{30}, InnerAlg::kShortVector, false},
          HybridStrategy{{30}, InnerAlg::kScatterCollect, false}}) {
      EXPECT_LE(chosen, planner.predict(Collective::kBroadcast, pure, n)
                            .seconds(planner.params()) +
                            1e-12)
          << "n=" << n;
    }
  }
}

TEST(PlannerTest, ScatterAndGatherAlwaysUseMstPrimitive) {
  const Planner planner(MachineParams::paragon());
  const Group g = Group::contiguous(24);
  for (auto c : {Collective::kScatter, Collective::kGather}) {
    for (std::size_t n : {8u, 1u << 20}) {
      const auto strat = planner.select_strategy(c, g, n);
      EXPECT_EQ(strat.dims, std::vector<int>{24});
    }
  }
}

TEST(PlannerTest, PlansValidateForAllCollectives) {
  const Planner planner(MachineParams::paragon());
  const Group g = Group::contiguous(12);
  for (auto c : {Collective::kBroadcast, Collective::kScatter,
                 Collective::kGather, Collective::kCollect,
                 Collective::kCombineToOne, Collective::kCombineToAll,
                 Collective::kDistributedCombine}) {
    for (std::size_t elems : {1u, 100u, 100000u}) {
      const Schedule s = planner.plan(c, g, elems, 8, 1);
      const auto v = validate(s);
      EXPECT_TRUE(v.ok) << to_string(c) << " elems=" << elems << "\n"
                        << v.message();
      EXPECT_FALSE(s.algorithm().empty());
    }
  }
}

TEST(PlannerTest, ForcedStrategyIsHonored) {
  const Planner planner(MachineParams::paragon());
  const Group g = Group::contiguous(12);
  const HybridStrategy strat{{3, 4}, InnerAlg::kScatterCollect, false};
  const Schedule s = planner.plan_with_strategy(Collective::kBroadcast, g, 64,
                                                8, 0, strat);
  EXPECT_NE(s.algorithm().find("3x4,SSCC"), std::string::npos);
}

TEST(PlannerTest, ForcedStrategyMustFactorGroup) {
  const Planner planner;
  const Group g = Group::contiguous(10);
  const HybridStrategy bad{{3, 4}, InnerAlg::kShortVector, false};
  EXPECT_THROW(
      planner.plan_with_strategy(Collective::kBroadcast, g, 8, 1, 0, bad),
      Error);
}

TEST(PlannerTest, RootBoundsChecked) {
  const Planner planner;
  const Group g = Group::contiguous(4);
  EXPECT_THROW(planner.plan(Collective::kBroadcast, g, 8, 1, 4), Error);
  EXPECT_THROW(planner.plan(Collective::kBroadcast, g, 8, 1, -1), Error);
}

TEST(PlannerTest, LevelsMetadataPositiveForMst) {
  const Planner planner(MachineParams::paragon());
  const Group g = Group::contiguous(16);
  const Schedule s = planner.plan(Collective::kBroadcast, g, 1, 8, 0);
  EXPECT_EQ(s.levels(), 4);  // ceil(log2 16) recursion levels
}

TEST(PlannerTest, MeshPlannerAddsAlignedCandidates) {
  const Mesh2D mesh(16, 32);
  const Planner planner(MachineParams::paragon(), mesh);
  const Group whole = whole_mesh_group(mesh);
  const auto candidates = planner.candidate_strategies(whole);
  bool found_mesh_aligned = false;
  for (const auto& c : candidates) {
    if (c.mesh_aligned) {
      found_mesh_aligned = true;
      EXPECT_EQ(c.dims[0], 32);  // dim 1 spans a physical row
    }
  }
  EXPECT_TRUE(found_mesh_aligned);
}

TEST(PlannerTest, MeshCollectPrefersRowColumnStaging) {
  const Mesh2D mesh(16, 32);
  const Planner planner(MachineParams::paragon(), mesh);
  const Group whole = whole_mesh_group(mesh);
  const auto strat =
      planner.select_strategy(Collective::kCollect, whole, 1 << 20);
  EXPECT_TRUE(strat.mesh_aligned);
  // The (r + c - 2) startup count must beat the 1-D ring's (p - 1).
  const Cost chosen = planner.predict(Collective::kCollect, strat, 1 << 20);
  EXPECT_LT(chosen.alpha_terms, 511.0);
}

TEST(PlannerTest, UnstructuredGroupGetsNoMeshCandidates) {
  const Mesh2D mesh(4, 4);
  const Planner planner(MachineParams::paragon(), mesh);
  const Group scattered({0, 5, 3, 9, 12, 151});
  for (const auto& c : planner.candidate_strategies(scattered)) {
    EXPECT_FALSE(c.mesh_aligned);
  }
}

TEST(PlannerTest, AutoSelectionIsDeterministic) {
  const Planner planner(MachineParams::paragon());
  const Group g = Group::contiguous(30);
  const auto a = planner.select_strategy(Collective::kCombineToAll, g, 4096);
  const auto b = planner.select_strategy(Collective::kCombineToAll, g, 4096);
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace intercom
