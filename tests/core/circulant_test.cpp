// Träff circulant primitive tests (arXiv 2410.14234): collect and
// distributed combine at powers of two and — the algorithms' whole point —
// at non-powers-of-two, plus round-count, uneven/empty pieces, strided
// groups, and the allreduce composition through the planner.
#include <gtest/gtest.h>

#include <cmath>

#include "intercom/core/planner.hpp"
#include "intercom/core/primitives.hpp"
#include "intercom/ir/validate.hpp"
#include "intercom/util/factorization.hpp"
#include "testing/reference.hpp"

namespace intercom {
namespace {

using testing::RefExec;

class CirculantCollectP : public ::testing::TestWithParam<std::tuple<int, int>> {
};

TEST_P(CirculantCollectP, EveryNodeEndsWithEverything) {
  const auto [p, elems_i] = GetParam();
  const std::size_t elems = static_cast<std::size_t>(elems_i);
  const Group g = Group::contiguous(p);
  Schedule s;
  planner::Ctx ctx{s, sizeof(double)};
  const auto pieces = block_partition(ElemRange{0, elems}, p);
  planner::circulant_collect(ctx, g, pieces);
  validate_or_throw(s);
  RefExec<double> exec(s);
  for (int r = 0; r < p; ++r) {
    const ElemRange piece = pieces[static_cast<std::size_t>(r)];
    for (std::size_t i = piece.lo; i < piece.hi; ++i) {
      exec.user(r)[i] = 1000.0 * r + static_cast<double>(i);
    }
  }
  exec.run();
  for (int r = 0; r < p; ++r) {
    for (int owner = 0; owner < p; ++owner) {
      const ElemRange piece = pieces[static_cast<std::size_t>(owner)];
      for (std::size_t i = piece.lo; i < piece.hi; ++i) {
        EXPECT_DOUBLE_EQ(exec.user(r)[i],
                         1000.0 * owner + static_cast<double>(i))
            << "at rank " << r;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndLengths, CirculantCollectP,
    ::testing::Values(std::make_tuple(1, 5), std::make_tuple(2, 8),
                      std::make_tuple(3, 10), std::make_tuple(4, 4),
                      std::make_tuple(5, 23), std::make_tuple(6, 17),
                      std::make_tuple(7, 29), std::make_tuple(8, 64),
                      std::make_tuple(12, 7),  // fewer elems than nodes
                      std::make_tuple(13, 40), std::make_tuple(16, 33),
                      std::make_tuple(30, 61)));

TEST(CirculantCollectTest, CeilLog2Rounds) {
  // Each round is one sendrecv, except wrap-split rounds which carry two
  // messages per direction — never more (at most one wrap per block run).
  for (int p : {2, 3, 5, 6, 7, 8, 12, 16, 31}) {
    Schedule s;
    planner::Ctx ctx{s, 1};
    planner::circulant_collect(ctx, Group::contiguous(p),
                               ElemRange{0, static_cast<std::size_t>(4 * p)});
    const std::size_t rounds = static_cast<std::size_t>(ceil_log2(p));
    for (const auto& prog : s.programs()) {
      EXPECT_GE(prog.ops.size(), rounds) << "p=" << p;
      EXPECT_LE(prog.ops.size(), 2 * rounds) << "p=" << p;
    }
  }
}

TEST(CirculantCollectTest, StridedGroupRunsCleanly) {
  const Group g = Group::strided(2, 3, 5);  // 2,5,8,11,14
  Schedule s;
  planner::Ctx ctx{s, sizeof(double)};
  const auto pieces = block_partition(ElemRange{0, 20}, 5);
  planner::circulant_collect(ctx, g, pieces);
  validate_or_throw(s);
  RefExec<double> exec(s);
  for (int r = 0; r < 5; ++r) {
    const ElemRange piece = pieces[static_cast<std::size_t>(r)];
    for (std::size_t i = piece.lo; i < piece.hi; ++i) {
      exec.user(g.physical(r))[i] = static_cast<double>(r);
    }
  }
  exec.run();
  EXPECT_DOUBLE_EQ(exec.user(2)[19], 4.0);
  EXPECT_DOUBLE_EQ(exec.user(14)[0], 0.0);
}

TEST(CirculantCollectTest, UnevenAndEmptyPieces) {
  const Group g = Group::contiguous(5);
  std::vector<ElemRange> runs{{0, 5}, {5, 5}, {5, 11}, {11, 12}, {12, 12}};
  Schedule s;
  planner::Ctx ctx{s, sizeof(double)};
  planner::circulant_collect(ctx, g, runs);
  validate_or_throw(s);
  RefExec<double> exec(s);
  for (int r = 0; r < 5; ++r) {
    for (std::size_t i = runs[static_cast<std::size_t>(r)].lo;
         i < runs[static_cast<std::size_t>(r)].hi; ++i) {
      exec.user(r)[i] = 10.0 * r + 1.0;
    }
  }
  exec.run();
  for (int r = 0; r < 5; ++r) {
    EXPECT_DOUBLE_EQ(exec.user(r)[0], 1.0);
    EXPECT_DOUBLE_EQ(exec.user(r)[5], 21.0);
    EXPECT_DOUBLE_EQ(exec.user(r)[11], 31.0);
  }
}

class CirculantReduceScatterP : public ::testing::TestWithParam<int> {};

TEST_P(CirculantReduceScatterP, EachNodeGetsItsCombinedPiece) {
  const int p = GetParam();
  const std::size_t elems = 29;
  const Group g = Group::contiguous(p);
  Schedule s;
  planner::Ctx ctx{s, sizeof(double)};
  const auto pieces = block_partition(ElemRange{0, elems}, p);
  planner::circulant_distributed_combine(ctx, g, pieces);
  validate_or_throw(s);
  RefExec<double> exec(s);
  for (int r = 0; r < p; ++r) {
    for (std::size_t i = 0; i < elems; ++i) {
      exec.user(r)[i] = static_cast<double>(r + 1);
    }
  }
  exec.run();
  const double want = p * (p + 1) / 2.0;
  for (int r = 0; r < p; ++r) {
    const ElemRange piece = pieces[static_cast<std::size_t>(r)];
    for (std::size_t i = piece.lo; i < piece.hi; ++i) {
      EXPECT_DOUBLE_EQ(exec.user(r)[i], want) << "rank " << r << " elem " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, CirculantReduceScatterP,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 12, 13, 15,
                                           30));

TEST(CirculantReduceScatterTest, EveryContributionCountedExactlyOnce) {
  // Power-of-ten contributions: any double-count or drop of one rank's
  // partial shows up as a wrong digit, not a near-miss.
  for (int p : {3, 4, 5, 7}) {
    const std::size_t elems = 8;
    const Group g = Group::contiguous(p);
    Schedule s;
    planner::Ctx ctx{s, sizeof(double)};
    const auto pieces = block_partition(ElemRange{0, elems}, p);
    planner::circulant_distributed_combine(ctx, g, pieces);
    RefExec<double> exec(s);
    for (int r = 0; r < p; ++r) {
      for (std::size_t i = 0; i < elems; ++i) {
        exec.user(r)[i] = std::pow(10.0, r) * (static_cast<double>(i) + 1.0);
      }
    }
    exec.run();
    double ones = 0.0;
    for (int r = 0; r < p; ++r) ones += std::pow(10.0, r);
    for (int r = 0; r < p; ++r) {
      const ElemRange piece = pieces[static_cast<std::size_t>(r)];
      for (std::size_t i = piece.lo; i < piece.hi; ++i) {
        EXPECT_DOUBLE_EQ(exec.user(r)[i],
                         ones * (static_cast<double>(i) + 1.0))
            << "p=" << p << " rank " << r;
      }
    }
  }
}

TEST(CirculantTest, RejectsGappedRuns) {
  Schedule s;
  planner::Ctx ctx{s, 8};
  std::vector<ElemRange> gapped{{0, 2}, {3, 4}};
  EXPECT_THROW(planner::circulant_collect(ctx, Group::contiguous(2), gapped),
               Error);
  EXPECT_THROW(
      planner::circulant_distributed_combine(ctx, Group::contiguous(2), gapped),
      Error);
}

TEST(CirculantPlannerTest, AllreduceCompositionIsCorrect) {
  // Through the planner: reduce-scatter then collect over the same block
  // partition — Träff's optimal non-pipelined allreduce.
  const Planner planner;
  for (int p : {3, 5, 6, 7, 12}) {
    const std::size_t elems = 31;
    const Group g = Group::contiguous(p);
    const HybridStrategy strategy{{p}, InnerAlg::kCirculant, false};
    const Schedule s = planner.plan_with_strategy(
        Collective::kCombineToAll, g, elems, sizeof(double), 0, strategy);
    validate_or_throw(s);
    EXPECT_NE(s.algorithm().find(",T"), std::string::npos);
    RefExec<double> exec(s);
    for (int r = 0; r < p; ++r) {
      for (std::size_t i = 0; i < elems; ++i) {
        exec.user(r)[i] = static_cast<double>(r + 1);
      }
    }
    exec.run();
    const double want = p * (p + 1) / 2.0;
    for (int r = 0; r < p; ++r) {
      for (std::size_t i = 0; i < elems; ++i) {
        EXPECT_DOUBLE_EQ(exec.user(r)[i], want)
            << "p=" << p << " rank " << r << " elem " << i;
      }
    }
  }
}

TEST(CirculantPlannerTest, CandidateSetCarriesCirculant) {
  const Planner planner(MachineParams::paragon());
  for (int p : {2, 5, 12}) {
    const auto candidates =
        planner.candidate_strategies(Group::contiguous(p));
    bool found = false;
    for (const auto& c : candidates) {
      if (c.inner == InnerAlg::kCirculant) {
        ASSERT_EQ(c.dims.size(), 1u);
        EXPECT_EQ(c.dims[0], p);
        found = true;
      }
    }
    EXPECT_TRUE(found) << "p=" << p;
  }
}

TEST(CirculantPlannerTest, WinsShortAllgatherAtPrimeGroupSize) {
  // At prime p = 7 no multi-dimensional hybrid exists, so the short-vector
  // race is ring (6 startups) vs gather+broadcast (6) vs circulant
  // (ceil(log2 7) = 3) — the model must select the circulant.
  const Planner planner(MachineParams::paragon());
  const Group g = Group::contiguous(7);
  const HybridStrategy s =
      planner.select_strategy(Collective::kCollect, g, 56);
  EXPECT_EQ(s.inner, InnerAlg::kCirculant) << s.label();
  const Schedule sched = planner.plan(Collective::kCollect, g, 7, 8, 0);
  EXPECT_NE(sched.algorithm().find(",T"), std::string::npos)
      << sched.algorithm();
}

TEST(CirculantPlannerTest, RejectsCirculantForRootedCollectives) {
  const Planner planner;
  const Group g = Group::contiguous(4);
  const HybridStrategy strategy{{4}, InnerAlg::kCirculant, false};
  EXPECT_THROW(planner.plan_with_strategy(Collective::kBroadcast, g, 8, 8, 0,
                                          strategy),
               Error);
  // And the cost model prices it out instead of throwing, so rankers can
  // carry it unconditionally.
  const Cost c = hybrid_cost(Collective::kBroadcast, strategy, 64.0);
  EXPECT_GE(c.alpha_terms, 1e29);
}

}  // namespace
}  // namespace intercom
