// Decision-cache tests: model seeding with deterministic tie-breaks, the
// explore/exploit schedule, write-once cross-member choice publication,
// lock-in, persistence round-trips, and — the robustness contract — corrupt
// or stale cache files falling back to model seeding instead of throwing.
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <limits>
#include <string>
#include <vector>

#include "intercom/core/decision_cache.hpp"

namespace intercom {
namespace {

std::vector<DecisionCell::Candidate> three_candidates() {
  std::vector<DecisionCell::Candidate> cands;
  DecisionCell::Candidate a;
  a.strategy = HybridStrategy{{8}, InnerAlg::kScatterCollect, false};
  a.label = "1x8,SC";
  a.predicted_seconds = 2.0;
  DecisionCell::Candidate b;
  b.strategy = HybridStrategy{{8}, InnerAlg::kShortVector, false};
  b.label = "1x8,M";
  b.predicted_seconds = 1.0;
  DecisionCell::Candidate c;
  c.strategy = HybridStrategy{{8}, InnerAlg::kCirculant, false};
  c.label = "1x8,T";
  c.predicted_seconds = 3.0;
  cands.push_back(a);
  cands.push_back(b);
  cands.push_back(c);
  return cands;
}

DecisionCache::CellKey key_of(Collective c, int p, std::size_t nbytes) {
  return DecisionCache::CellKey{c, p, DecisionCache::bucket_of(nbytes)};
}

/// One full trial's worth of member reports: every member of the
/// group_size-wide shape reports `ns`, committing exactly one sample.
void observe_trial(DecisionCache& cache, DecisionCell& cell, int candidate,
                   double ns) {
  for (int member = 0; member < cell.group_size; ++member) {
    cache.observe(cell, candidate, ns);
  }
}

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "decision_cache_test_" + name;
}

TEST(DecisionCacheTest, BucketOfIsLog2) {
  EXPECT_EQ(DecisionCache::bucket_of(0), 0);
  EXPECT_EQ(DecisionCache::bucket_of(1), 1);
  EXPECT_EQ(DecisionCache::bucket_of(2), 2);
  EXPECT_EQ(DecisionCache::bucket_of(3), 2);
  EXPECT_EQ(DecisionCache::bucket_of(4), 3);
  EXPECT_EQ(DecisionCache::bucket_of(1 << 20), 21);
  EXPECT_EQ(DecisionCache::bucket_of((1 << 20) + 1), 21);
}

TEST(DecisionCacheTest, SeedOrderFollowsModelWithLabelTieBreak) {
  DecisionCache cache(MachineParams::unit(), "inproc");
  auto cands = three_candidates();
  cands[0].predicted_seconds = 1.0;  // tie with cands[1]
  DecisionCell* cell =
      cache.acquire(key_of(Collective::kCollect, 8, 64), cands, 8);
  ASSERT_NE(cell, nullptr);
  ASSERT_EQ(cell->seed_order.size(), 3u);
  // "1x8,M" < "1x8,SC" lexicographically on equal cost; "1x8,T" is last.
  EXPECT_EQ(cell->candidates[cell->seed_order[0]].label, "1x8,M");
  EXPECT_EQ(cell->candidates[cell->seed_order[1]].label, "1x8,SC");
  EXPECT_EQ(cell->candidates[cell->seed_order[2]].label, "1x8,T");
}

TEST(DecisionCacheTest, AcquireIsIdempotent) {
  DecisionCache cache(MachineParams::unit(), "inproc");
  const auto key = key_of(Collective::kCollect, 8, 64);
  DecisionCell* first = cache.acquire(key, three_candidates(), 8);
  DecisionCell* second = cache.acquire(key, {}, 8);
  EXPECT_EQ(first, second);
  EXPECT_EQ(cache.find(key), first);
  EXPECT_EQ(cache.cell_count(), 1u);
  EXPECT_EQ(cache.find(key_of(Collective::kCollect, 8, 1 << 20)), nullptr);
}

TEST(DecisionCacheTest, InitialSweepVisitsEveryCandidateInModelOrder) {
  DecisionCache cache(MachineParams::unit(), "inproc");
  DecisionCell* cell = cache.acquire(key_of(Collective::kCollect, 8, 64),
                                     three_candidates(), 8);
  EXPECT_EQ(cache.choose(*cell, 0, AutotuneMode::kOnline),
            cell->seed_order[0]);
  EXPECT_EQ(cache.choose(*cell, 1, AutotuneMode::kOnline),
            cell->seed_order[1]);
  EXPECT_EQ(cache.choose(*cell, 2, AutotuneMode::kOnline),
            cell->seed_order[2]);
}

TEST(DecisionCacheTest, ChoicePublicationIsWriteOnce) {
  DecisionCache cache(MachineParams::unit(), "inproc");
  DecisionCell* cell = cache.acquire(key_of(Collective::kCollect, 8, 64),
                                     three_candidates(), 8);
  const int first = cache.choose(*cell, 4, AutotuneMode::kOnline);
  // Feed measurements that would flip a fresh computation; the published
  // choice for trial 4 must not move (all members adopt the first writer).
  observe_trial(cache, *cell, (first + 1) % 3, 1.0);
  observe_trial(cache, *cell, (first + 1) % 3, 1.0);
  EXPECT_EQ(cache.choose(*cell, 4, AutotuneMode::kOnline), first);
}

TEST(DecisionCacheTest, LocksInMeasuredBestAfterBudget) {
  DecisionCache cache(MachineParams::unit(), "inproc");
  const int budget = 6;
  DecisionCell* cell = cache.acquire(key_of(Collective::kCollect, 8, 64),
                                     three_candidates(), budget);
  // The model says "1x8,M"; measurement says the circulant is 10x faster.
  for (int t = 0; t < budget; ++t) {
    const int idx = cache.choose(*cell, static_cast<std::uint64_t>(t),
                                 AutotuneMode::kOnline);
    const bool circulant = cell->candidates[idx].label == "1x8,T";
    observe_trial(cache, *cell, idx, circulant ? 100.0 : 1000.0);
  }
  const int final_idx =
      cache.choose(*cell, budget, AutotuneMode::kOnline);
  EXPECT_EQ(cell->candidates[final_idx].label, "1x8,T");
  EXPECT_EQ(cell->winner_label(), "1x8,T");
  // Locked: further observations are ignored, choices stay put.
  const std::uint64_t obs_at_lock = cell->candidates[final_idx].observations;
  observe_trial(cache, *cell, final_idx, 1e9);
  EXPECT_EQ(cache.choose(*cell, budget + 50, AutotuneMode::kOnline),
            final_idx);
  EXPECT_EQ(cell->candidates[final_idx].observations, obs_at_lock);
}

TEST(DecisionCacheTest, TrialStatisticIsMinOverTrialsOfMaxOverMembers) {
  DecisionCache cache(MachineParams::unit(), "inproc");
  DecisionCell* cell = cache.acquire(key_of(Collective::kCollect, 4, 64),
                                     three_candidates(), 8);
  ASSERT_EQ(cell->group_size, 4);
  // Trial 1: three fast members, one straggler — the trial is as slow as
  // its slowest member.
  cache.observe(*cell, 0, 10.0);
  cache.observe(*cell, 0, 12.0);
  cache.observe(*cell, 0, 11.0);
  EXPECT_EQ(cell->candidates[0].observations, 0u);  // trial still in flight
  cache.observe(*cell, 0, 500.0);
  EXPECT_EQ(cell->candidates[0].observations, 1u);
  EXPECT_DOUBLE_EQ(cell->candidates[0].best_ns, 500.0);
  // Trial 2: uniformly slower members but no straggler — the faster
  // complete trial wins the min.
  observe_trial(cache, *cell, 0, 80.0);
  EXPECT_EQ(cell->candidates[0].observations, 2u);
  EXPECT_DOUBLE_EQ(cell->candidates[0].best_ns, 80.0);
}

TEST(DecisionCacheTest, SeedModeNeverExplores) {
  DecisionCache cache(MachineParams::unit(), "inproc");
  DecisionCell* cell = cache.acquire(key_of(Collective::kCollect, 8, 64),
                                     three_candidates(), 8);
  for (std::uint64_t t = 0; t < 20; ++t) {
    EXPECT_EQ(cache.choose(*cell, t, AutotuneMode::kSeed),
              cell->seed_order[0]);
  }
  EXPECT_EQ(cell->winner_label(), "");
}

TEST(DecisionCacheTest, PersistenceRoundTripWarmStartsLocked) {
  const std::string path = temp_path("roundtrip.json");
  const MachineParams params = MachineParams::paragon();
  {
    DecisionCache cache(params, "inproc");
    const int budget = 6;
    DecisionCell* cell = cache.acquire(key_of(Collective::kCollect, 8, 64),
                                       three_candidates(), budget);
    for (int t = 0; t <= budget; ++t) {
      const int idx = cache.choose(*cell, static_cast<std::uint64_t>(t),
                                   AutotuneMode::kOnline);
      observe_trial(cache, *cell, idx,
                    cell->candidates[idx].label == "1x8,T" ? 100.0 : 1000.0);
    }
    ASSERT_EQ(cell->winner_label(), "1x8,T");
    std::string error;
    ASSERT_TRUE(cache.save(path, &error)) << error;
    // Atomic-rename write: no temporary left behind.
    EXPECT_FALSE(std::ifstream(path + ".tmp").good());
  }
  {
    DecisionCache warm(params, "inproc");
    std::string error;
    ASSERT_TRUE(warm.load(path, &error)) << error;
    DecisionCell* cell = warm.acquire(key_of(Collective::kCollect, 8, 64),
                                      three_candidates(), 6);
    // Warm start: locked immediately, trial 0 already returns the winner —
    // no exploration.
    EXPECT_EQ(cell->winner_label(), "1x8,T");
    const int idx = warm.choose(*cell, 0, AutotuneMode::kOnline);
    EXPECT_EQ(cell->candidates[idx].label, "1x8,T");
    EXPECT_GT(cell->candidates[idx].observations, 0u);
  }
  std::remove(path.c_str());
}

TEST(DecisionCacheTest, GarbageFileFallsBackWithoutThrowing) {
  const std::string path = temp_path("garbage.json");
  {
    std::ofstream out(path);
    out << "{\"version\": 1, \"fabric\": \"inp";  // truncated mid-string
  }
  DecisionCache cache(MachineParams::unit(), "inproc");
  std::string error;
  EXPECT_FALSE(cache.load(path, &error));
  EXPECT_NE(error.find("malformed"), std::string::npos) << error;
  {
    std::ofstream out(path);
    out << "complete garbage, not JSON at all }{";
  }
  EXPECT_FALSE(cache.load(path, &error));
  // The cache still works, model-seeded.
  DecisionCell* cell = cache.acquire(key_of(Collective::kCollect, 8, 64),
                                     three_candidates(), 8);
  EXPECT_EQ(cache.choose(*cell, 0, AutotuneMode::kOnline),
            cell->seed_order[0]);
  std::remove(path.c_str());
}

TEST(DecisionCacheTest, MissingFileIsAcleanMiss) {
  DecisionCache cache(MachineParams::unit(), "inproc");
  std::string error;
  EXPECT_FALSE(cache.load(temp_path("does_not_exist.json"), &error));
  EXPECT_NE(error.find("cannot read"), std::string::npos) << error;
}

TEST(DecisionCacheTest, StaleFilesAreRejected) {
  const MachineParams params = MachineParams::paragon();
  const std::string path = temp_path("stale.json");
  {
    DecisionCache cache(params, "inproc");
    DecisionCell* cell = cache.acquire(key_of(Collective::kCollect, 8, 64),
                                       three_candidates(), 0);
    cache.choose(*cell, 0, AutotuneMode::kOnline);  // budget 0: instant lock
    std::string error;
    ASSERT_TRUE(cache.save(path, &error)) << error;
  }
  std::string error;
  // Different fabric.
  DecisionCache other_fabric(params, "sim");
  EXPECT_FALSE(other_fabric.load(path, &error));
  EXPECT_NE(error.find("fabric"), std::string::npos) << error;
  // Different machine parameters.
  DecisionCache other_params(MachineParams::delta(), "inproc");
  EXPECT_FALSE(other_params.load(path, &error));
  EXPECT_NE(error.find("hash"), std::string::npos) << error;
  // Doctored version number.
  {
    std::ifstream in(path);
    std::string text((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    const auto at = text.find("\"version\": 1");
    ASSERT_NE(at, std::string::npos);
    text.replace(at, 12, "\"version\": 9");
    std::ofstream out(path);
    out << text;
  }
  DecisionCache same(params, "inproc");
  EXPECT_FALSE(same.load(path, &error));
  EXPECT_NE(error.find("version"), std::string::npos) << error;
  std::remove(path.c_str());
}

TEST(DecisionCacheTest, ParamsHashDistinguishesPresets) {
  EXPECT_NE(DecisionCache::hash_params(MachineParams::paragon()),
            DecisionCache::hash_params(MachineParams::delta()));
  EXPECT_NE(DecisionCache::hash_params(MachineParams::paragon()),
            DecisionCache::hash_params(MachineParams::sunmos()));
  EXPECT_EQ(DecisionCache::hash_params(MachineParams::paragon()),
            DecisionCache::hash_params(MachineParams::paragon()));
}

// The hash must be a function of parameter *values*, not bit patterns:
// -0.0 == 0.0 and all NaNs are equally "unset", but their representations
// differ, and a raw bit-cast would silently fork the cache generation —
// the persisted decisions would never warm-start a machine whose config
// round-tripped a negative zero.
TEST(DecisionCacheTest, ParamsHashCanonicalizesFloatRepresentations) {
  MachineParams plus_zero = MachineParams::paragon();
  MachineParams minus_zero = plus_zero;
  plus_zero.per_level_overhead = 0.0;
  minus_zero.per_level_overhead = -0.0;
  EXPECT_EQ(DecisionCache::hash_params(plus_zero),
            DecisionCache::hash_params(minus_zero));

  MachineParams quiet_nan = MachineParams::paragon();
  MachineParams payload_nan = quiet_nan;
  quiet_nan.gamma = std::numeric_limits<double>::quiet_NaN();
  payload_nan.gamma =
      std::bit_cast<double>(std::bit_cast<std::uint64_t>(
                                std::numeric_limits<double>::quiet_NaN()) |
                            0x2au);  // same NaN, different payload bits
  EXPECT_EQ(DecisionCache::hash_params(quiet_nan),
            DecisionCache::hash_params(payload_nan));

  // Canonicalization must not collapse genuinely distinct values.
  MachineParams other = MachineParams::paragon();
  other.per_level_overhead = 1.0;
  EXPECT_NE(DecisionCache::hash_params(plus_zero),
            DecisionCache::hash_params(other));
}

TEST(DecisionCacheTest, SaveMergesUnconsumedLoadedCells) {
  const MachineParams params = MachineParams::unit();
  const std::string path = temp_path("merge.json");
  {
    DecisionCache cache(params, "inproc");
    DecisionCell* a = cache.acquire(key_of(Collective::kCollect, 8, 64),
                                    three_candidates(), 0);
    DecisionCell* b = cache.acquire(
        key_of(Collective::kDistributedCombine, 4, 256), three_candidates(),
        0);
    cache.choose(*a, 0, AutotuneMode::kOnline);
    cache.choose(*b, 0, AutotuneMode::kOnline);
    std::string error;
    ASSERT_TRUE(cache.save(path, &error)) << error;
  }
  {
    // Touch only one of the two cells, then save again: the untouched cell
    // must survive the round trip.
    DecisionCache cache(params, "inproc");
    std::string error;
    ASSERT_TRUE(cache.load(path, &error)) << error;
    cache.acquire(key_of(Collective::kCollect, 8, 64), three_candidates(), 0);
    ASSERT_TRUE(cache.save(path, &error)) << error;
  }
  {
    DecisionCache cache(params, "inproc");
    std::string error;
    ASSERT_TRUE(cache.load(path, &error)) << error;
    DecisionCell* b = cache.acquire(
        key_of(Collective::kDistributedCombine, 4, 256), three_candidates(),
        8);
    EXPECT_FALSE(b->winner_label().empty());
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace intercom
