// Simulation-feedback tuner tests.
#include <gtest/gtest.h>

#include "intercom/core/tuner.hpp"
#include "intercom/util/error.hpp"

namespace intercom {
namespace {

SimParams unit_sim() {
  SimParams p;
  p.machine = MachineParams::unit();
  return p;
}

TEST(TunerTest, NeverWorseThanModelPick) {
  const Planner planner(MachineParams::paragon());
  SimParams params;
  params.machine = MachineParams::paragon();
  const int p = 30;
  const WormholeSimulator sim(Mesh2D(1, p), params);
  const Group g = Group::contiguous(p);
  for (std::size_t n : {64u, 1u << 14, 1u << 18}) {
    const auto model_pick =
        planner.select_strategy(Collective::kBroadcast, g, n);
    const Schedule model_plan = planner.plan_with_strategy(
        Collective::kBroadcast, g, n, 1, 0, model_pick);
    const double model_sim = sim.run(model_plan).seconds;
    const TuneResult tuned = tune_strategy(planner, sim,
                                           Collective::kBroadcast, g, n, 1, 0);
    EXPECT_LE(tuned.best_seconds, model_sim * (1.0 + 1e-12)) << "n=" << n;
  }
}

TEST(TunerTest, EntriesSortedBySimulatedTime) {
  const Planner planner(MachineParams::paragon());
  const WormholeSimulator sim(Mesh2D(1, 12), unit_sim());
  const TuneResult tuned = tune_strategy(
      planner, sim, Collective::kCombineToAll, Group::contiguous(12), 1024, 1,
      0, 5);
  ASSERT_GE(tuned.entries.size(), 2u);
  ASSERT_LE(tuned.entries.size(), 5u);
  for (std::size_t i = 1; i < tuned.entries.size(); ++i) {
    EXPECT_LE(tuned.entries[i - 1].simulated_seconds,
              tuned.entries[i].simulated_seconds);
  }
  EXPECT_EQ(tuned.best, tuned.entries.front().strategy);
}

TEST(TunerTest, CanOverruleTheModel) {
  // The model over-charges interleaved hybrids with worst-case sharing; on
  // a machine with excess link capacity (which absorbs the sharing) the
  // simulated winner can differ from the model's pick.  At minimum the
  // tuner must agree with simulation on whichever it returns.
  MachineParams machine = MachineParams::paragon();
  machine.link_capacity = 4.0;
  const Planner planner(machine);
  SimParams params;
  params.machine = machine;
  const int p = 30;
  const WormholeSimulator sim(Mesh2D(1, p), params);
  const Group g = Group::contiguous(p);
  const std::size_t n = 1 << 15;
  const TuneResult tuned =
      tune_strategy(planner, sim, Collective::kBroadcast, g, n, 1, 0, 8);
  // Verify the reported winner really simulates at the reported time.
  const Schedule s = planner.plan_with_strategy(Collective::kBroadcast, g, n,
                                                1, 0, tuned.best);
  EXPECT_DOUBLE_EQ(sim.run(s).seconds, tuned.best_seconds);
}

TEST(TunerTest, TopKOneDegeneratesToModelChoice) {
  const Planner planner(MachineParams::paragon());
  const WormholeSimulator sim(Mesh2D(1, 8), unit_sim());
  const Group g = Group::contiguous(8);
  const TuneResult tuned =
      tune_strategy(planner, sim, Collective::kBroadcast, g, 256, 1, 0, 1);
  EXPECT_EQ(tuned.entries.size(), 1u);
}

TEST(TunerTest, RankingIsDeterministicWithLabelTieBreak) {
  // Under unit parameters short-vector costs tie across whole families of
  // strategies; the ranking must still be reproducible run to run (stable
  // sort + label tie-break), so repeated tuner invocations — and the
  // decision cache seeded from the same ranking — agree exactly.
  const Planner planner(MachineParams::unit());
  const WormholeSimulator sim(Mesh2D(1, 12), unit_sim());
  const Group g = Group::contiguous(12);
  const TuneResult first = tune_strategy(
      planner, sim, Collective::kBroadcast, g, 8, 1, 0, 10);
  for (int repeat = 0; repeat < 3; ++repeat) {
    const TuneResult again = tune_strategy(
        planner, sim, Collective::kBroadcast, g, 8, 1, 0, 10);
    ASSERT_EQ(again.entries.size(), first.entries.size());
    for (std::size_t i = 0; i < first.entries.size(); ++i) {
      EXPECT_EQ(again.entries[i].strategy.label(),
                first.entries[i].strategy.label())
          << "rank " << i << " changed between identical invocations";
    }
  }
  // Ties are ordered by label: among equal simulated times the labels must
  // ascend.
  for (std::size_t i = 1; i < first.entries.size(); ++i) {
    if (first.entries[i - 1].simulated_seconds ==
        first.entries[i].simulated_seconds) {
      EXPECT_LT(first.entries[i - 1].strategy.label(),
                first.entries[i].strategy.label());
    }
  }
}

TEST(TunerTest, RejectsBadTopK) {
  const Planner planner;
  const WormholeSimulator sim(Mesh2D(1, 4), unit_sim());
  EXPECT_THROW(tune_strategy(planner, sim, Collective::kBroadcast,
                             Group::contiguous(4), 8, 1, 0, 0),
               Error);
}

}  // namespace
}  // namespace intercom
