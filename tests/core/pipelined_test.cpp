// Pipelined (segmented ring) broadcast tests — the Section 8 "theoretically
// superior" algorithm.
#include <gtest/gtest.h>

#include "intercom/core/pipelined.hpp"
#include "intercom/ir/validate.hpp"
#include "testing/reference.hpp"

namespace intercom {
namespace {

using testing::RefExec;

class PipelinedP
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(PipelinedP, DeliversRootData) {
  const auto [p, root, segments] = GetParam();
  const std::size_t elems = 24;
  const Group g = Group::contiguous(p);
  Schedule s;
  planner::Ctx ctx{s, sizeof(double)};
  planner::pipelined_broadcast(ctx, g, ElemRange{0, elems}, root, segments);
  const auto v = validate(s);
  ASSERT_TRUE(v.ok) << v.message();
  RefExec<double> exec(s);
  for (std::size_t i = 0; i < elems; ++i) {
    exec.user(root)[i] = static_cast<double>(i) * 1.5;
  }
  exec.run();
  for (int r = 0; r < p; ++r) {
    for (std::size_t i = 0; i < elems; ++i) {
      EXPECT_DOUBLE_EQ(exec.user(r)[i], static_cast<double>(i) * 1.5)
          << "rank " << r;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, PipelinedP,
    ::testing::Values(std::make_tuple(1, 0, 4), std::make_tuple(2, 0, 1),
                      std::make_tuple(2, 1, 3), std::make_tuple(5, 2, 4),
                      std::make_tuple(8, 0, 8), std::make_tuple(8, 3, 100),
                      std::make_tuple(12, 11, 6)));

TEST(PipelinedTest, SegmentCountClampedToElements) {
  const Group g = Group::contiguous(3);
  Schedule s;
  planner::Ctx ctx{s, sizeof(double)};
  // 4 elements but 100 requested segments: must not emit empty transfers.
  planner::pipelined_broadcast(ctx, g, ElemRange{0, 4}, 0, 100);
  EXPECT_TRUE(validate(s).ok);
  // 4 segments over 2 hops.
  EXPECT_EQ(s.total_sends(), 8u);
}

TEST(PipelinedTest, MessageCountIsSegmentsTimesHops) {
  const Group g = Group::contiguous(6);
  Schedule s;
  planner::Ctx ctx{s, 1};
  planner::pipelined_broadcast(ctx, g, ElemRange{0, 600}, 0, 10);
  EXPECT_EQ(s.total_sends(), 10u * 5u);
}

TEST(PipelinedCostTest, AsymptoticallyHalvesScatterCollectBeta) {
  // (p - 2 + S)(alpha + (n/S) beta) -> ~ n beta for large S, vs 2 n beta for
  // scatter/collect: the Section 8 factor-of-two claim.
  const int p = 32;
  const double n = 1 << 20;
  const MachineParams params = MachineParams::unit();
  const Cost pipe = planner::pipelined_broadcast_cost(
      p, n, planner::optimal_segments(p, n, params, 1 << 16));
  EXPECT_LT(pipe.beta_bytes, 1.2 * n);
  EXPECT_GT(pipe.beta_bytes, n * 0.99);
}

TEST(PipelinedCostTest, SingleSegmentIsStoreAndForward) {
  const Cost c = planner::pipelined_broadcast_cost(5, 100.0, 1);
  EXPECT_DOUBLE_EQ(c.alpha_terms, 4.0);
  EXPECT_DOUBLE_EQ(c.beta_bytes, 400.0);
}

TEST(PipelinedCostTest, OptimalSegmentsScalesWithLength) {
  const MachineParams paragon = MachineParams::paragon();
  const int small = planner::optimal_segments(30, 1024.0, paragon);
  const int large = planner::optimal_segments(30, 1 << 20, paragon);
  EXPECT_LE(small, large);
  EXPECT_GE(small, 1);
}

TEST(PipelinedCostTest, TrivialGroups) {
  EXPECT_DOUBLE_EQ(planner::pipelined_broadcast_cost(1, 100.0, 4).alpha_terms,
                   0.0);
  EXPECT_EQ(planner::optimal_segments(2, 1e6, MachineParams::paragon()), 1);
}

}  // namespace
}  // namespace intercom
