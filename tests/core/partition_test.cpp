#include "intercom/core/partition.hpp"

#include <gtest/gtest.h>

#include "intercom/util/error.hpp"

namespace intercom {
namespace {

TEST(PartitionTest, EvenSplit) {
  const auto pieces = block_partition(ElemRange{0, 12}, 4);
  ASSERT_EQ(pieces.size(), 4u);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(pieces[static_cast<std::size_t>(i)],
              (ElemRange{static_cast<std::size_t>(3 * i),
                         static_cast<std::size_t>(3 * (i + 1))}));
  }
}

TEST(PartitionTest, UnevenSplitIsBalancedAndTiles) {
  // The paper's n_i ~ n/p case: pieces differ by at most one element.
  for (std::size_t e : {1u, 7u, 29u, 100u}) {
    for (int d : {1, 2, 3, 5, 13}) {
      const auto pieces = block_partition(ElemRange{10, 10 + e}, d);
      std::size_t total = 0;
      std::size_t lo = 10;
      std::size_t min_sz = e;
      std::size_t max_sz = 0;
      for (const auto& piece : pieces) {
        EXPECT_EQ(piece.lo, lo);
        lo = piece.hi;
        total += piece.elems();
        min_sz = std::min(min_sz, piece.elems());
        max_sz = std::max(max_sz, piece.elems());
      }
      EXPECT_EQ(lo, 10 + e);
      EXPECT_EQ(total, e);
      EXPECT_LE(max_sz - min_sz, 1u);
    }
  }
}

TEST(PartitionTest, MorePiecesThanElementsYieldsEmpties) {
  const auto pieces = block_partition(ElemRange{0, 2}, 5);
  int nonempty = 0;
  for (const auto& piece : pieces) {
    if (!piece.empty()) ++nonempty;
  }
  EXPECT_EQ(nonempty, 2);
}

TEST(PartitionTest, PieceMatchesPartitionEntry) {
  const ElemRange range{3, 40};
  const auto pieces = block_partition(range, 7);
  for (int i = 0; i < 7; ++i) {
    EXPECT_EQ(block_piece(range, 7, i), pieces[static_cast<std::size_t>(i)]);
  }
}

TEST(PartitionTest, RejectsBadArguments) {
  EXPECT_THROW(block_piece(ElemRange{0, 4}, 0, 0), Error);
  EXPECT_THROW(block_piece(ElemRange{0, 4}, 2, 2), Error);
  EXPECT_THROW(block_piece(ElemRange{0, 4}, 2, -1), Error);
}

TEST(SliceOfTest, ByteConversion) {
  const BufSlice s = slice_of(ElemRange{4, 10}, 8, kScratchBuf);
  EXPECT_EQ(s.buffer, kScratchBuf);
  EXPECT_EQ(s.offset, 32u);
  EXPECT_EQ(s.bytes, 48u);
  EXPECT_THROW(slice_of(ElemRange{0, 1}, 0), Error);
}

}  // namespace
}  // namespace intercom
