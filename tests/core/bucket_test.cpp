// Bucket (ring) primitive tests: collect and distributed combine, including
// uneven pieces, strided groups, and step-count checks.
#include <gtest/gtest.h>

#include <cmath>

#include "intercom/core/primitives.hpp"
#include "intercom/ir/validate.hpp"
#include "testing/reference.hpp"

namespace intercom {
namespace {

using testing::RefExec;

class BucketCollectP : public ::testing::TestWithParam<std::tuple<int, int>> {
};

TEST_P(BucketCollectP, EveryNodeEndsWithEverything) {
  const auto [p, elems_i] = GetParam();
  const std::size_t elems = static_cast<std::size_t>(elems_i);
  const Group g = Group::contiguous(p);
  Schedule s;
  planner::Ctx ctx{s, sizeof(double)};
  const auto pieces = block_partition(ElemRange{0, elems}, p);
  planner::bucket_collect(ctx, g, pieces);
  validate_or_throw(s);
  RefExec<double> exec(s);
  for (int r = 0; r < p; ++r) {
    const ElemRange piece = pieces[static_cast<std::size_t>(r)];
    for (std::size_t i = piece.lo; i < piece.hi; ++i) {
      exec.user(r)[i] = 1000.0 * r + static_cast<double>(i);
    }
  }
  exec.run();
  for (int r = 0; r < p; ++r) {
    for (int owner = 0; owner < p; ++owner) {
      const ElemRange piece = pieces[static_cast<std::size_t>(owner)];
      for (std::size_t i = piece.lo; i < piece.hi; ++i) {
        EXPECT_DOUBLE_EQ(exec.user(r)[i], 1000.0 * owner + static_cast<double>(i))
            << "at rank " << r;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndLengths, BucketCollectP,
    ::testing::Values(std::make_tuple(1, 5), std::make_tuple(2, 8),
                      std::make_tuple(3, 10), std::make_tuple(4, 4),
                      std::make_tuple(5, 23), std::make_tuple(8, 64),
                      std::make_tuple(12, 7),  // fewer elems than nodes
                      std::make_tuple(16, 33), std::make_tuple(30, 61)));

TEST(BucketCollectTest, EachNodeDoesDMinus1Steps) {
  const int p = 9;
  Schedule s;
  planner::Ctx ctx{s, 1};
  planner::bucket_collect(ctx, Group::contiguous(p), ElemRange{0, 90});
  for (const auto& prog : s.programs()) {
    EXPECT_EQ(prog.ops.size(), static_cast<std::size_t>(p - 1));
    for (const auto& op : prog.ops) {
      EXPECT_EQ(op.kind, OpKind::kSendRecv);
    }
  }
}

TEST(BucketCollectTest, StridedGroupRunsCleanly) {
  const Group g = Group::strided(2, 3, 5);  // 2,5,8,11,14
  Schedule s;
  planner::Ctx ctx{s, sizeof(double)};
  const auto pieces = block_partition(ElemRange{0, 20}, 5);
  planner::bucket_collect(ctx, g, pieces);
  validate_or_throw(s);
  RefExec<double> exec(s);
  for (int r = 0; r < 5; ++r) {
    const ElemRange piece = pieces[static_cast<std::size_t>(r)];
    for (std::size_t i = piece.lo; i < piece.hi; ++i) {
      exec.user(g.physical(r))[i] = static_cast<double>(r);
    }
  }
  exec.run();
  EXPECT_DOUBLE_EQ(exec.user(2)[19], 4.0);
  EXPECT_DOUBLE_EQ(exec.user(14)[0], 0.0);
}

TEST(BucketCollectTest, ContiguousRunsOfUnevenWidth) {
  // Staged hybrid collect passes runs of different widths; the ring must
  // handle them (its buckets are whatever the caller owns).
  const Group g = Group::contiguous(3);
  std::vector<ElemRange> runs{{0, 5}, {5, 6}, {6, 12}};
  Schedule s;
  planner::Ctx ctx{s, sizeof(double)};
  planner::bucket_collect(ctx, g, runs);
  validate_or_throw(s);
  RefExec<double> exec(s);
  for (int r = 0; r < 3; ++r) {
    for (std::size_t i = runs[static_cast<std::size_t>(r)].lo;
         i < runs[static_cast<std::size_t>(r)].hi; ++i) {
      exec.user(r)[i] = 10.0 * r + 1.0;
    }
  }
  exec.run();
  for (int r = 0; r < 3; ++r) {
    EXPECT_DOUBLE_EQ(exec.user(r)[0], 1.0);
    EXPECT_DOUBLE_EQ(exec.user(r)[5], 11.0);
    EXPECT_DOUBLE_EQ(exec.user(r)[11], 21.0);
  }
}

class BucketReduceScatterP : public ::testing::TestWithParam<int> {};

TEST_P(BucketReduceScatterP, EachNodeGetsItsCombinedPiece) {
  const int p = GetParam();
  const std::size_t elems = 29;
  const Group g = Group::contiguous(p);
  Schedule s;
  planner::Ctx ctx{s, sizeof(double)};
  const auto pieces = block_partition(ElemRange{0, elems}, p);
  planner::bucket_distributed_combine(ctx, g, pieces);
  validate_or_throw(s);
  RefExec<double> exec(s);
  for (int r = 0; r < p; ++r) {
    for (std::size_t i = 0; i < elems; ++i) {
      exec.user(r)[i] = static_cast<double>(r + 1);
    }
  }
  exec.run();
  const double want = p * (p + 1) / 2.0;
  for (int r = 0; r < p; ++r) {
    const ElemRange piece = pieces[static_cast<std::size_t>(r)];
    for (std::size_t i = piece.lo; i < piece.hi; ++i) {
      EXPECT_DOUBLE_EQ(exec.user(r)[i], want) << "rank " << r << " elem " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, BucketReduceScatterP,
                         ::testing::Values(1, 2, 3, 4, 7, 8, 15, 30));

TEST(BucketReduceScatterTest, ValueDependentPieces) {
  // Element-identifying values: piece j must be the sum over all ranks of
  // each rank's distinct contribution at that element.
  const int p = 4;
  const std::size_t elems = 8;
  const Group g = Group::contiguous(p);
  Schedule s;
  planner::Ctx ctx{s, sizeof(double)};
  const auto pieces = block_partition(ElemRange{0, elems}, p);
  planner::bucket_distributed_combine(ctx, g, pieces);
  RefExec<double> exec(s);
  for (int r = 0; r < p; ++r) {
    for (std::size_t i = 0; i < elems; ++i) {
      exec.user(r)[i] = std::pow(10.0, r) * (static_cast<double>(i) + 1.0);
    }
  }
  exec.run();
  for (int r = 0; r < p; ++r) {
    const ElemRange piece = pieces[static_cast<std::size_t>(r)];
    for (std::size_t i = piece.lo; i < piece.hi; ++i) {
      EXPECT_DOUBLE_EQ(exec.user(r)[i], 1111.0 * (static_cast<double>(i) + 1.0));
    }
  }
}

TEST(BucketTest, RejectsGappedRuns) {
  Schedule s;
  planner::Ctx ctx{s, 8};
  std::vector<ElemRange> gapped{{0, 2}, {3, 4}};
  EXPECT_THROW(planner::bucket_collect(ctx, Group::contiguous(2), gapped),
               Error);
}

}  // namespace
}  // namespace intercom
