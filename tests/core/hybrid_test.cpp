// Hybrid algorithm tests: every enumerable strategy must produce a valid,
// semantically correct schedule — the property that makes strategy selection
// purely a performance decision.
#include <gtest/gtest.h>

#include "intercom/core/algorithms.hpp"
#include "intercom/ir/validate.hpp"
#include "intercom/model/strategy.hpp"
#include "testing/reference.hpp"

namespace intercom {
namespace {

using testing::RefExec;

struct HybridCase {
  int p;
  std::size_t elems;
};

class HybridAllStrategiesP : public ::testing::TestWithParam<HybridCase> {};

TEST_P(HybridAllStrategiesP, BroadcastCorrectUnderEveryStrategy) {
  const auto [p, elems] = GetParam();
  const Group g = Group::contiguous(p);
  const int root = (p > 2) ? 2 : 0;
  for (const auto& strat : enumerate_strategies(p, 3)) {
    Schedule s;
    planner::Ctx ctx{s, sizeof(double)};
    planner::hybrid_broadcast(ctx, g, ElemRange{0, elems}, root,
                              std::span<const int>(strat.dims), strat.inner);
    const auto v = validate(s);
    ASSERT_TRUE(v.ok) << strat.label() << ": " << v.message();
    RefExec<double> exec(s);
    for (std::size_t i = 0; i < elems; ++i) {
      exec.user(root)[i] = static_cast<double>(i) + 0.125;
    }
    exec.run();
    for (int r = 0; r < p; ++r) {
      for (std::size_t i = 0; i < elems; ++i) {
        ASSERT_DOUBLE_EQ(exec.user(r)[i], static_cast<double>(i) + 0.125)
            << strat.label() << " rank " << r;
      }
    }
  }
}

TEST_P(HybridAllStrategiesP, CombineToOneCorrectUnderEveryStrategy) {
  const auto [p, elems] = GetParam();
  const Group g = Group::contiguous(p);
  const int root = p - 1;
  for (const auto& strat : enumerate_strategies(p, 3)) {
    Schedule s;
    planner::Ctx ctx{s, sizeof(double)};
    planner::hybrid_combine_to_one(ctx, g, ElemRange{0, elems}, root,
                                   std::span<const int>(strat.dims),
                                   strat.inner);
    const auto v = validate(s);
    ASSERT_TRUE(v.ok) << strat.label() << ": " << v.message();
    RefExec<double> exec(s);
    for (int r = 0; r < p; ++r) {
      for (std::size_t i = 0; i < elems; ++i) {
        exec.user(r)[i] = (r + 1.0) + (static_cast<double>(i) * p);
      }
    }
    exec.run();
    for (std::size_t i = 0; i < elems; ++i) {
      const double want =
          p * (p + 1) / 2.0 + static_cast<double>(i) * p * p;
      ASSERT_DOUBLE_EQ(exec.user(root)[i], want) << strat.label();
    }
  }
}

TEST_P(HybridAllStrategiesP, CombineToAllCorrectUnderEveryStrategy) {
  const auto [p, elems] = GetParam();
  const Group g = Group::contiguous(p);
  for (const auto& strat : enumerate_strategies(p, 3)) {
    Schedule s;
    planner::Ctx ctx{s, sizeof(double)};
    planner::hybrid_combine_to_all(ctx, g, ElemRange{0, elems},
                                   std::span<const int>(strat.dims),
                                   strat.inner);
    const auto v = validate(s);
    ASSERT_TRUE(v.ok) << strat.label() << ": " << v.message();
    RefExec<double> exec(s);
    for (int r = 0; r < p; ++r) {
      for (std::size_t i = 0; i < elems; ++i) exec.user(r)[i] = r + 1.0;
    }
    exec.run();
    for (int r = 0; r < p; ++r) {
      for (std::size_t i = 0; i < elems; ++i) {
        ASSERT_DOUBLE_EQ(exec.user(r)[i], p * (p + 1) / 2.0)
            << strat.label() << " rank " << r;
      }
    }
  }
}

TEST_P(HybridAllStrategiesP, CollectCorrectUnderEveryStrategy) {
  const auto [p, elems] = GetParam();
  const Group g = Group::contiguous(p);
  const auto pieces = block_partition(ElemRange{0, elems}, p);
  for (const auto& strat : enumerate_strategies(p, 3)) {
    Schedule s;
    planner::Ctx ctx{s, sizeof(double)};
    planner::hybrid_collect(ctx, g, ElemRange{0, elems},
                            std::span<const int>(strat.dims), strat.inner);
    const auto v = validate(s);
    ASSERT_TRUE(v.ok) << strat.label() << ": " << v.message();
    RefExec<double> exec(s);
    for (int r = 0; r < p; ++r) {
      const auto piece = pieces[static_cast<std::size_t>(r)];
      for (std::size_t i = piece.lo; i < piece.hi; ++i) {
        exec.user(r)[i] = 100.0 * r + static_cast<double>(i);
      }
    }
    exec.run();
    for (int r = 0; r < p; ++r) {
      for (int owner = 0; owner < p; ++owner) {
        const auto piece = pieces[static_cast<std::size_t>(owner)];
        for (std::size_t i = piece.lo; i < piece.hi; ++i) {
          ASSERT_DOUBLE_EQ(exec.user(r)[i],
                           100.0 * owner + static_cast<double>(i))
              << strat.label() << " rank " << r;
        }
      }
    }
  }
}

TEST_P(HybridAllStrategiesP, DistributedCombineCorrectUnderEveryStrategy) {
  const auto [p, elems] = GetParam();
  const Group g = Group::contiguous(p);
  const auto pieces = block_partition(ElemRange{0, elems}, p);
  for (const auto& strat : enumerate_strategies(p, 3)) {
    Schedule s;
    planner::Ctx ctx{s, sizeof(double)};
    planner::hybrid_distributed_combine(ctx, g, ElemRange{0, elems},
                                        std::span<const int>(strat.dims),
                                        strat.inner);
    const auto v = validate(s);
    ASSERT_TRUE(v.ok) << strat.label() << ": " << v.message();
    RefExec<double> exec(s);
    for (int r = 0; r < p; ++r) {
      for (std::size_t i = 0; i < elems; ++i) {
        exec.user(r)[i] = (r + 1.0) * (static_cast<double>(i) + 1.0);
      }
    }
    exec.run();
    for (int r = 0; r < p; ++r) {
      const auto piece = pieces[static_cast<std::size_t>(r)];
      for (std::size_t i = piece.lo; i < piece.hi; ++i) {
        ASSERT_DOUBLE_EQ(exec.user(r)[i],
                         p * (p + 1) / 2.0 * (static_cast<double>(i) + 1.0))
            << strat.label() << " rank " << r;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, HybridAllStrategiesP,
    ::testing::Values(HybridCase{1, 5}, HybridCase{4, 16}, HybridCase{6, 13},
                      HybridCase{8, 8}, HybridCase{12, 48}, HybridCase{12, 5},
                      HybridCase{16, 37}, HybridCase{30, 60},
                      HybridCase{30, 7}));

TEST(HybridTest, Fig1TwelveNodeSsmccWalkthrough) {
  // The paper's Fig. 1: 12 nodes, scatter in subgroups of 2, scatter in the
  // next dimension, MST broadcast in subgroups of 3, collects back out —
  // strategy (2 x 2 x 3, SSMCC) with node 0 as root.
  const Group g = Group::contiguous(12);
  const std::vector<int> dims{2, 2, 3};
  Schedule s;
  planner::Ctx ctx{s, sizeof(double)};
  planner::hybrid_broadcast(ctx, g, ElemRange{0, 12}, 0,
                            std::span<const int>(dims),
                            InnerAlg::kShortVector);
  validate_or_throw(s);
  RefExec<double> exec(s);
  for (std::size_t i = 0; i < 12; ++i) exec.user(0)[i] = 20.0 + i;  // "x0.."
  exec.run();
  for (int r = 0; r < 12; ++r) {
    for (std::size_t i = 0; i < 12; ++i) {
      EXPECT_DOUBLE_EQ(exec.user(r)[i], 20.0 + i);
    }
  }
  // Message count: scatter dim1 (root's pair): 1; scatter dim2 (one pair per
  // column): 2; MST broadcast in 4 groups of 3: 8; collect dim2 (2 columns x
  // 3 pairs, 2 sends each): 12; collect dim1 (6 pairs): 12.  Total 35.
  EXPECT_EQ(s.total_sends(), 35u);
}

TEST(HybridTest, StridedGroupHybridBroadcast) {
  // Group collectives run hybrids over arbitrary member arrays (Section 9).
  const Group g({5, 17, 2, 9, 30, 44});
  const std::vector<int> dims{2, 3};
  Schedule s;
  planner::Ctx ctx{s, sizeof(double)};
  planner::hybrid_broadcast(ctx, g, ElemRange{0, 18}, 3,
                            std::span<const int>(dims),
                            InnerAlg::kScatterCollect);
  validate_or_throw(s);
  RefExec<double> exec(s);
  for (std::size_t i = 0; i < 18; ++i) exec.user(9)[i] = 5.5;
  exec.run();
  for (int m : g.members()) EXPECT_DOUBLE_EQ(exec.user(m)[17], 5.5);
}

TEST(HybridTest, RejectsNonFactoringDims) {
  const Group g = Group::contiguous(10);
  const std::vector<int> dims{3, 4};
  Schedule s;
  planner::Ctx ctx{s, 8};
  EXPECT_THROW(planner::hybrid_broadcast(ctx, g, ElemRange{0, 10}, 0,
                                         std::span<const int>(dims),
                                         InnerAlg::kShortVector),
               Error);
}

}  // namespace
}  // namespace intercom
