// MST (recursive halving) primitive tests: correctness on arbitrary group
// sizes (explicitly including non-powers-of-two), message-count optimality,
// and schedule validity.
#include <gtest/gtest.h>

#include <numeric>

#include "intercom/core/primitives.hpp"
#include "intercom/ir/validate.hpp"
#include "intercom/util/factorization.hpp"
#include "testing/reference.hpp"

namespace intercom {
namespace {

using testing::RefExec;

Schedule make_bcast(const Group& g, std::size_t elems, int root) {
  Schedule s;
  planner::Ctx ctx{s, sizeof(double)};
  planner::mst_broadcast(ctx, g, ElemRange{0, elems}, root);
  return s;
}

class MstBroadcastP : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(MstBroadcastP, DeliversRootDataToAll) {
  const auto [p, root] = GetParam();
  const Group g = Group::contiguous(p);
  const std::size_t elems = 13;
  Schedule s = make_bcast(g, elems, root);
  validate_or_throw(s);
  RefExec<double> exec(s);
  for (std::size_t i = 0; i < elems; ++i) {
    exec.user(root)[i] = 100.0 * root + static_cast<double>(i);
  }
  exec.run();
  for (int r = 0; r < p; ++r) {
    for (std::size_t i = 0; i < elems; ++i) {
      EXPECT_DOUBLE_EQ(exec.user(r)[i], 100.0 * root + static_cast<double>(i))
          << "rank " << r << " elem " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndRoots, MstBroadcastP,
    ::testing::Values(std::make_tuple(1, 0), std::make_tuple(2, 0),
                      std::make_tuple(2, 1), std::make_tuple(3, 1),
                      std::make_tuple(5, 4), std::make_tuple(7, 3),
                      std::make_tuple(8, 0), std::make_tuple(12, 11),
                      std::make_tuple(16, 9), std::make_tuple(30, 17),
                      std::make_tuple(31, 0)));

TEST(MstBroadcastTest, UsesExactlyPMinus1Messages) {
  for (int p : {2, 3, 7, 16, 30}) {
    Schedule s = make_bcast(Group::contiguous(p), 4, 0);
    EXPECT_EQ(s.total_sends(), static_cast<std::size_t>(p - 1));
  }
}

TEST(MstBroadcastTest, CriticalPathIsCeilLog2) {
  // No node sends or receives more than ceil(log2 p) times.
  for (int p : {2, 3, 5, 8, 13, 30, 31, 32}) {
    Schedule s = make_bcast(Group::contiguous(p), 4, 0);
    std::size_t max_ops = 0;
    for (const auto& prog : s.programs()) {
      max_ops = std::max(max_ops, prog.ops.size());
    }
    EXPECT_LE(max_ops, static_cast<std::size_t>(ceil_log2(p))) << "p=" << p;
  }
}

TEST(MstBroadcastTest, WorksOnStridedGroups) {
  const Group g = Group::strided(3, 4, 6);  // nodes 3,7,11,15,19,23
  Schedule s = make_bcast(g, 5, 2);
  validate_or_throw(s);
  RefExec<double> exec(s);
  for (std::size_t i = 0; i < 5; ++i) exec.user(11)[i] = 7.0 + i;
  exec.run();
  for (int m : g.members()) {
    EXPECT_DOUBLE_EQ(exec.user(m)[4], 11.0);
  }
}

class MstScatterGatherP : public ::testing::TestWithParam<int> {};

TEST_P(MstScatterGatherP, ScatterDeliversCanonicalPieces) {
  const int p = GetParam();
  const Group g = Group::contiguous(p);
  const std::size_t elems = 37;  // not divisible by most p
  Schedule s;
  planner::Ctx ctx{s, sizeof(double)};
  const auto pieces = block_partition(ElemRange{0, elems}, p);
  planner::mst_scatter(ctx, g, pieces, 0);
  validate_or_throw(s);
  RefExec<double> exec(s);
  for (std::size_t i = 0; i < elems; ++i) {
    exec.user(0)[i] = static_cast<double>(i) + 0.5;
  }
  exec.run();
  for (int r = 0; r < p; ++r) {
    const ElemRange piece = pieces[static_cast<std::size_t>(r)];
    for (std::size_t i = piece.lo; i < piece.hi; ++i) {
      EXPECT_DOUBLE_EQ(exec.user(r)[i], static_cast<double>(i) + 0.5)
          << "rank " << r;
    }
  }
}

TEST_P(MstScatterGatherP, GatherAssemblesAtRoot) {
  const int p = GetParam();
  const Group g = Group::contiguous(p);
  const std::size_t elems = 41;
  const int root = p / 2;
  Schedule s;
  planner::Ctx ctx{s, sizeof(double)};
  const auto pieces = block_partition(ElemRange{0, elems}, p);
  planner::mst_gather(ctx, g, pieces, root);
  validate_or_throw(s);
  RefExec<double> exec(s);
  for (int r = 0; r < p; ++r) {
    const ElemRange piece = pieces[static_cast<std::size_t>(r)];
    for (std::size_t i = piece.lo; i < piece.hi; ++i) {
      exec.user(r)[i] = static_cast<double>(i) * 2.0;
    }
  }
  exec.run();
  for (std::size_t i = 0; i < elems; ++i) {
    EXPECT_DOUBLE_EQ(exec.user(root)[i], static_cast<double>(i) * 2.0);
  }
}

TEST_P(MstScatterGatherP, GatherIsScatterInverse) {
  const int p = GetParam();
  const Group g = Group::contiguous(p);
  const std::size_t elems = 23;
  Schedule s;
  planner::Ctx ctx{s, sizeof(double)};
  const ElemRange range{0, elems};
  planner::mst_scatter(ctx, g, range, 0);
  planner::mst_gather(ctx, g, range, 0);
  validate_or_throw(s);
  RefExec<double> exec(s);
  for (std::size_t i = 0; i < elems; ++i) {
    exec.user(0)[i] = 3.0 * static_cast<double>(i) + 1.0;
  }
  exec.run();
  for (std::size_t i = 0; i < elems; ++i) {
    EXPECT_DOUBLE_EQ(exec.user(0)[i], 3.0 * static_cast<double>(i) + 1.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, MstScatterGatherP,
                         ::testing::Values(1, 2, 3, 5, 8, 12, 16, 30, 31));

class MstReduceP : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(MstReduceP, SumsAllContributionsAtRoot) {
  const auto [p, root] = GetParam();
  const Group g = Group::contiguous(p);
  const std::size_t elems = 9;
  Schedule s;
  planner::Ctx ctx{s, sizeof(double)};
  planner::mst_combine_to_one(ctx, g, ElemRange{0, elems}, root);
  validate_or_throw(s);
  RefExec<double> exec(s);
  for (int r = 0; r < p; ++r) {
    for (std::size_t i = 0; i < elems; ++i) {
      exec.user(r)[i] = static_cast<double>(r + 1) * (i + 1.0);
    }
  }
  exec.run();
  const double rank_sum = p * (p + 1) / 2.0;
  for (std::size_t i = 0; i < elems; ++i) {
    EXPECT_DOUBLE_EQ(exec.user(root)[i], rank_sum * (i + 1.0));
  }
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndRoots, MstReduceP,
    ::testing::Values(std::make_tuple(1, 0), std::make_tuple(2, 1),
                      std::make_tuple(3, 0), std::make_tuple(6, 5),
                      std::make_tuple(9, 4), std::make_tuple(16, 0),
                      std::make_tuple(30, 29)));

TEST(MstTest, RejectsInvalidRoot) {
  Schedule s;
  planner::Ctx ctx{s, 8};
  const Group g = Group::contiguous(4);
  EXPECT_THROW(planner::mst_broadcast(ctx, g, ElemRange{0, 4}, 4), Error);
  EXPECT_THROW(planner::mst_broadcast(ctx, g, ElemRange{0, 4}, -1), Error);
}

TEST(MstTest, RejectsNonContiguousPieces) {
  Schedule s;
  planner::Ctx ctx{s, 8};
  const Group g = Group::contiguous(2);
  std::vector<ElemRange> gapped{{0, 2}, {3, 5}};
  EXPECT_THROW(planner::mst_scatter(ctx, g, gapped, 0), Error);
}

TEST(MstTest, EmptyRangeProducesNoTraffic) {
  Schedule s = make_bcast(Group::contiguous(8), 0, 0);
  EXPECT_EQ(s.total_sends(), 0u);
  EXPECT_TRUE(validate(s).ok);
}

}  // namespace
}  // namespace intercom
