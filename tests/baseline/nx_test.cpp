// NX-like baseline tests: correctness of the comparator plus the structural
// properties that explain Table 3's ratios (serial collect, flat MST).
#include <gtest/gtest.h>

#include "intercom/baseline/nx.hpp"
#include "intercom/core/partition.hpp"
#include "intercom/ir/validate.hpp"
#include "intercom/model/machine_params.hpp"
#include "intercom/sim/engine.hpp"
#include "testing/reference.hpp"

namespace intercom {
namespace {

using testing::RefExec;

TEST(NxBaselineTest, BroadcastCorrect) {
  const Group g = Group::contiguous(9);
  Schedule s = nx::broadcast(g, 11, sizeof(double), 4);
  validate_or_throw(s);
  RefExec<double> exec(s);
  for (std::size_t i = 0; i < 11; ++i) exec.user(4)[i] = 2.0 * i;
  exec.run();
  for (int r = 0; r < 9; ++r) EXPECT_DOUBLE_EQ(exec.user(r)[10], 20.0);
  EXPECT_EQ(s.levels(), 0);  // native call: no recursion overhead
}

TEST(NxBaselineTest, CollectCorrectButSerial) {
  const int p = 8;
  const Group g = Group::contiguous(p);
  const std::size_t elems = 16;
  Schedule s = nx::collect(g, elems, sizeof(double));
  validate_or_throw(s);
  RefExec<double> exec(s);
  const auto pieces = block_partition(ElemRange{0, elems}, p);
  for (int r = 0; r < p; ++r) {
    for (std::size_t i = pieces[static_cast<std::size_t>(r)].lo;
         i < pieces[static_cast<std::size_t>(r)].hi; ++i) {
      exec.user(r)[i] = 10.0 * r;
    }
  }
  exec.run();
  for (int r = 0; r < p; ++r) {
    EXPECT_DOUBLE_EQ(exec.user(r)[0], 0.0);
    EXPECT_DOUBLE_EQ(exec.user(r)[15], 70.0);
  }
  // Structural check: node 0's program starts with p-1 sequential receives —
  // the serial fan-in behind the paper's 77x ratio.
  const NodeProgram* root = s.find_program(0);
  ASSERT_NE(root, nullptr);
  int leading_recvs = 0;
  for (const auto& op : root->ops) {
    if (op.kind == OpKind::kRecv) {
      ++leading_recvs;
    } else {
      break;
    }
  }
  EXPECT_EQ(leading_recvs, p - 1);
}

TEST(NxBaselineTest, GlobalSumCorrect) {
  const int p = 7;
  const Group g = Group::contiguous(p);
  Schedule s = nx::combine_to_all(g, 5, sizeof(double));
  validate_or_throw(s);
  RefExec<double> exec(s);
  for (int r = 0; r < p; ++r) {
    for (std::size_t i = 0; i < 5; ++i) exec.user(r)[i] = r + 1.0;
  }
  exec.run();
  for (int r = 0; r < p; ++r) {
    EXPECT_DOUBLE_EQ(exec.user(r)[0], p * (p + 1) / 2.0);
  }
}

TEST(NxBaselineTest, ScatterGatherCorrect) {
  const int p = 6;
  const Group g = Group::contiguous(p);
  const std::size_t elems = 13;
  {
    Schedule s = nx::scatter(g, elems, sizeof(double), 2);
    validate_or_throw(s);
    RefExec<double> exec(s);
    for (std::size_t i = 0; i < elems; ++i) exec.user(2)[i] = i + 1.0;
    exec.run();
    const auto pieces = block_partition(ElemRange{0, elems}, p);
    for (int r = 0; r < p; ++r) {
      for (std::size_t i = pieces[static_cast<std::size_t>(r)].lo;
           i < pieces[static_cast<std::size_t>(r)].hi; ++i) {
        EXPECT_DOUBLE_EQ(exec.user(r)[i], i + 1.0);
      }
    }
  }
  {
    Schedule s = nx::gather(g, elems, sizeof(double), 0);
    validate_or_throw(s);
    RefExec<double> exec(s);
    const auto pieces = block_partition(ElemRange{0, elems}, p);
    for (int r = 0; r < p; ++r) {
      for (std::size_t i = pieces[static_cast<std::size_t>(r)].lo;
           i < pieces[static_cast<std::size_t>(r)].hi; ++i) {
        exec.user(r)[i] = 5.0 * i;
      }
    }
    exec.run();
    for (std::size_t i = 0; i < elems; ++i) {
      EXPECT_DOUBLE_EQ(exec.user(0)[i], 5.0 * i);
    }
  }
}

TEST(NxBaselineTest, SerialCollectLatencyScalesLinearly) {
  // Simulated 8-byte collect startup grows ~linearly with p (vs the
  // library's logarithmic/ring behaviour) — the root cause of Table 3's
  // collect column.
  SimParams params;
  params.machine = MachineParams::unit();
  const double t16 =
      WormholeSimulator(Mesh2D(1, 16), params)
          .run(nx::collect(Group::contiguous(16), 8, 1))
          .seconds;
  const double t64 =
      WormholeSimulator(Mesh2D(1, 64), params)
          .run(nx::collect(Group::contiguous(64), 8, 1))
          .seconds;
  // Pure linear scaling would give 4x; the logarithmic broadcast tail
  // dilutes it slightly at these sizes.
  EXPECT_GT(t64 / t16, 2.5);
}

TEST(NxBaselineTest, PlanDispatchCoversAllCollectives) {
  const Group g = Group::contiguous(5);
  for (auto c : {Collective::kBroadcast, Collective::kScatter,
                 Collective::kGather, Collective::kCollect,
                 Collective::kCombineToOne, Collective::kCombineToAll,
                 Collective::kDistributedCombine}) {
    const Schedule s = nx::plan(c, g, 10, 8, 1);
    EXPECT_TRUE(validate(s).ok) << to_string(c);
    EXPECT_EQ(s.algorithm().rfind("nx/", 0), 0u) << s.algorithm();
  }
}

}  // namespace
}  // namespace intercom
