// Data-path tests for the zero-copy transport rework: the eager/rendezvous
// split, the metrics-without-tracer contract, checksum-validation caching
// under reordering, and the compiled plan's receive+combine fusion.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <thread>
#include <vector>

#include "intercom/core/planner.hpp"
#include "intercom/model/machine_params.hpp"
#include "intercom/obs/metrics.hpp"
#include "intercom/runtime/communicator.hpp"
#include "intercom/runtime/compiled_plan.hpp"
#include "intercom/runtime/fault.hpp"
#include "intercom/runtime/multicomputer.hpp"
#include "intercom/runtime/reduce.hpp"
#include "intercom/runtime/transport.hpp"
#include "intercom/util/error.hpp"
#include "fabric_fixture.hpp"

namespace intercom {
namespace {

// The wire-behaviour suites run once per delivery fabric (see
// fabric_fixture.hpp); the FusionTest suite below stays single-backend —
// it tests plan compilation, not the wire.
class RendezvousTest : public FabricParamTest {};
class MetricsDecouplingTest : public FabricParamTest {};
class ReorderValidationTest : public FabricParamTest {};

std::vector<std::byte> pattern(std::size_t n, int seed) {
  std::vector<std::byte> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = static_cast<std::byte>((i * 131 + static_cast<std::size_t>(seed)) &
                                  0xff);
  }
  return v;
}

// ---------------------------------------------------------------------------
// Eager/rendezvous split.

TEST_P(RendezvousTest, LargeTransferBypassesTheSlabPool) {
  Transport& t = transport(2);
  ASSERT_GE(Transport::kDefaultRendezvousThreshold, 1024u);
  const std::size_t n = Transport::kDefaultRendezvousThreshold * 2;
  const auto payload = pattern(n, 7);
  std::vector<std::byte> out(n);
  std::thread sender([&] { t.send(0, 1, 1, 0, payload); });
  t.recv(0, 1, 1, 0, out);
  sender.join();
  EXPECT_EQ(out, payload);
  // The payload went straight from the sender's span into the posted buffer;
  // no staging slab was ever acquired.  On the cross-process backends the
  // payload necessarily stages once through the receiving pump's slab, so
  // the zero-copy property is in-process only.
  if (!cross_process()) {
    const auto stats = t.pool().stats();
    EXPECT_EQ(stats.allocations + stats.reuses, 0u);
  }
}

TEST_P(RendezvousTest, SendBlocksUntilReceiverPosts) {
  Transport& t = transport(2);
  const std::size_t n = Transport::kDefaultRendezvousThreshold;
  const auto payload = pattern(n, 3);
  std::atomic<bool> send_done{false};
  std::thread sender([&] {
    t.send(0, 1, 1, 0, payload);
    send_done = true;
  });
  // Not a proof of blocking, but a strong signal: the sender must not
  // complete while no receive is posted.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(send_done.load());
  std::vector<std::byte> out(n);
  t.recv(0, 1, 1, 0, out);
  sender.join();
  EXPECT_TRUE(send_done.load());
  EXPECT_EQ(out, payload);
}

TEST_P(RendezvousTest, MixedEagerAndRendezvousSameKeyStayFifo) {
  Transport& t = transport(2);
  const std::size_t big = Transport::kDefaultRendezvousThreshold;
  const auto small1 = pattern(64, 1);
  const auto large = pattern(big, 2);
  const auto small2 = pattern(64, 3);
  std::thread sender([&] {
    t.send(0, 1, 1, 0, small1);  // eager, queued
    t.send(0, 1, 1, 0, large);   // rendezvous, must wait its FIFO turn
    t.send(0, 1, 1, 0, small2);  // eager again
  });
  std::vector<std::byte> out_small(64);
  std::vector<std::byte> out_large(big);
  t.recv(0, 1, 1, 0, out_small);
  EXPECT_EQ(out_small, small1);
  t.recv(0, 1, 1, 0, out_large);
  EXPECT_EQ(out_large, large);
  t.recv(0, 1, 1, 0, out_small);
  EXPECT_EQ(out_small, small2);
  sender.join();
}

TEST_P(RendezvousTest, LengthMismatchSurfacesOnTheReceiver) {
  Transport& t = transport(2);
  const std::size_t n = Transport::kDefaultRendezvousThreshold;
  const auto payload = pattern(n, 9);
  std::vector<std::byte> wrong(n / 2);
  std::thread receiver([&] {
    EXPECT_THROW(t.recv(0, 1, 1, 0, wrong), Error);
  });
  // The mismatched claim falls back to an eager deposit, so the send
  // completes and the receiver raises the same error as the eager path.
  t.send(0, 1, 1, 0, payload);
  receiver.join();
}

TEST_P(RendezvousTest, AbortUnblocksABlockedRendezvousSender) {
  Transport& t = transport(2);
  const auto payload = pattern(Transport::kDefaultRendezvousThreshold, 5);
  std::atomic<bool> got_aborted{false};
  std::thread sender([&] {
    try {
      t.send(0, 1, 1, 0, payload);
    } catch (const AbortedError&) {
      got_aborted = true;
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  t.abort("test abort");
  sender.join();
  EXPECT_TRUE(got_aborted.load());
}

TEST_P(RendezvousTest, UnclaimedSendTimesOutWithTypedError) {
  Transport& t = transport(2);
  t.set_recv_timeout_ms(30);
  const auto payload = pattern(Transport::kDefaultRendezvousThreshold, 5);
  EXPECT_THROW(t.send(0, 1, 1, 0, payload), TimeoutError);
}

TEST_P(RendezvousTest, ThresholdKnobSelectsTheRegime) {
  {
    // Threshold above the payload: the send is eager and completes with no
    // receiver in sight.
    Transport& t = transport(2);
    t.set_rendezvous_threshold(1 << 20);
    const auto payload = pattern(4096, 1);
    t.send(0, 1, 1, 0, payload);  // must not block
    std::vector<std::byte> out(4096);
    t.recv(0, 1, 1, 0, out);
    EXPECT_EQ(out, payload);
    EXPECT_GT(t.pool().stats().allocations, 0u);
  }
  {
    // Threshold of 1: even a tiny payload takes the rendezvous path.
    Transport& t = transport(2);
    t.set_rendezvous_threshold(1);
    const auto payload = pattern(16, 2);
    std::vector<std::byte> out(16);
    std::thread sender([&] { t.send(0, 1, 1, 0, payload); });
    t.recv(0, 1, 1, 0, out);
    sender.join();
    EXPECT_EQ(out, payload);
    // Slab-free rendezvous is an in-process property; the wire backends
    // stage each crossing once in the pump (see LargeTransferBypasses...).
    if (!cross_process()) {
      EXPECT_EQ(t.pool().stats().allocations, 0u);
    }
  }
}

// A ring of simultaneous send/receive steps entirely above the threshold:
// every node's send blocks on its neighbour's posted buffer, so the
// post-before-send discipline of kSendRecv is what prevents deadlock.
TEST_P(RendezvousTest, SendRecvRingAboveThresholdDoesNotDeadlock) {
  Multicomputer& mc = machine(Mesh2D(1, 4));
  mc.set_rendezvous_threshold(1024);
  const std::size_t elems = 8192;  // 64 KB of doubles, all rendezvous
  mc.run_spmd([&](Node& node) {
    Communicator world = node.world();
    std::vector<double> data(elems, static_cast<double>(node.id()));
    world.all_reduce_sum(std::span<double>(data));
    for (double v : data) ASSERT_DOUBLE_EQ(v, 0.0 + 1.0 + 2.0 + 3.0);
  });
}

// ---------------------------------------------------------------------------
// Metrics are recorded with no tracer attached (regression: the metered path
// must not hide behind the tracing gate).

TEST_P(MetricsDecouplingTest, WireCountersUpdateWithoutTracer) {
  Transport& t = transport(2);
  MetricsRegistry metrics;
  t.set_metrics(&metrics);
  ASSERT_EQ(t.tracer(), nullptr);
  const auto payload = pattern(512, 4);
  t.send(0, 1, 1, 0, payload);
  std::vector<std::byte> out(512);
  t.recv(0, 1, 1, 0, out);
  EXPECT_EQ(metrics.counter("transport.sends").value(), 1u);
  EXPECT_EQ(metrics.counter("transport.recvs").value(), 1u);
  EXPECT_EQ(metrics.histogram("transport.send.bytes").count(), 1u);
  EXPECT_EQ(metrics.histogram("transport.send.bytes").sum(), 512u);
  EXPECT_EQ(metrics.histogram("transport.recv.ns").count(), 1u);
}

// ---------------------------------------------------------------------------
// Checksum-validation caching: under heavy reordering the receiver re-scans
// its pending queue many times waiting for the expected sequence number, but
// each frame's checksum is computed exactly once.

TEST_P(ReorderValidationTest, EachFrameValidatedExactlyOnce) {
  Transport& t = transport(2);
  auto injector = std::make_shared<FaultInjector>(31u);
  FaultSpec spec;
  spec.reorder = 1.0;  // every frame is parked behind its successor
  injector->set_default(spec);
  t.set_fault_injector(injector);
  t.set_retry_policy(/*max_retries=*/10, /*base_rto_ms=*/2);

  const int kMessages = 32;  // even: reorder pairs flush each other
  std::thread sender([&] {
    for (int i = 0; i < kMessages; ++i) {
      std::vector<std::byte> payload(sizeof(int));
      std::memcpy(payload.data(), &i, sizeof(int));
      t.send(0, 1, 2, 0, payload);
    }
  });
  for (int i = 0; i < kMessages; ++i) {
    std::vector<std::byte> out(sizeof(int));
    t.recv(0, 1, 2, 0, out);
    int value = -1;
    std::memcpy(&value, out.data(), sizeof(int));
    EXPECT_EQ(value, i);
  }
  sender.join();
  const auto stats = t.reliability_stats();
  EXPECT_GT(injector->stats().reordered, 0u);
  // One validation per arriving frame (originals + any retransmissions) —
  // re-scans of the buffered queue must hit the cached verdict.
  EXPECT_EQ(stats.checksum_validations, stats.frames_sent + stats.retransmits);
}

// ---------------------------------------------------------------------------
// Compiled-plan receive+combine fusion.

TEST(FusionTest, RecvIntoScratchThenCombineFusesToAccumulatingRecv) {
  Schedule s;
  const BufSlice user{kUserBuf, 0, 16};
  const BufSlice scratch{kScratchBuf, 0, 16};
  s.reserve_slice(0, user);
  s.reserve_slice(1, user);
  s.reserve_slice(1, scratch);
  s.program(0).ops.push_back(Op::send(1, user, 0));
  s.program(1).ops.push_back(Op::recv(0, scratch, 0));
  s.program(1).ops.push_back(Op::combine(scratch, user));

  CompiledPlan plan(s);
  const CProgram* p1 = plan.find_program(1);
  ASSERT_NE(p1, nullptr);
  ASSERT_EQ(p1->ops.size(), 1u);  // the combine was folded into the recv
  EXPECT_EQ(p1->ops[0].kind, OpKind::kRecv);
  EXPECT_TRUE(p1->ops[0].accumulate);
  EXPECT_TRUE(p1->ops[0].dst_user);
  EXPECT_EQ(p1->ops[0].dst_len, 16u);

  // And the fused plan still computes the right answer.
  Transport t(2);
  std::vector<double> d0{1.5, 2.5};
  std::vector<double> d1{10.0, 20.0};
  const ReduceOp op = sum_op<double>();
  std::vector<std::byte> arena0, arena1;
  std::thread th0([&] {
    execute_compiled(t, plan, 0,
                     std::as_writable_bytes(std::span<double>(d0)), 1, &op,
                     arena0);
  });
  execute_compiled(t, plan, 1, std::as_writable_bytes(std::span<double>(d1)),
                   1, &op, arena1);
  th0.join();
  EXPECT_DOUBLE_EQ(d1[0], 11.5);
  EXPECT_DOUBLE_EQ(d1[1], 22.5);
}

TEST(FusionTest, LaterReadOfTheStagingScratchBlocksFusion) {
  Schedule s;
  const BufSlice user{kUserBuf, 0, 16};
  const BufSlice scratch{kScratchBuf, 0, 16};
  s.reserve_slice(0, user);
  s.reserve_slice(1, user);
  s.reserve_slice(1, scratch);
  s.program(0).ops.push_back(Op::send(1, user, 0));
  s.program(1).ops.push_back(Op::recv(0, scratch, 0));
  s.program(1).ops.push_back(Op::combine(scratch, user));
  // The forward pass of a tree reduction: the staged payload is also sent on.
  s.program(1).ops.push_back(Op::send(0, scratch, 1));
  s.program(0).ops.push_back(Op::recv(1, scratch, 1));
  s.reserve_slice(0, scratch);

  CompiledPlan plan(s);
  const CProgram* p1 = plan.find_program(1);
  ASSERT_NE(p1, nullptr);
  ASSERT_EQ(p1->ops.size(), 3u);  // fusing would corrupt the forwarded copy
  for (const auto& op : p1->ops) EXPECT_FALSE(op.accumulate);
}

TEST(FusionTest, SendRecvWithOverlappingCombineDstDoesNotFuse) {
  Schedule s;
  const BufSlice user{kUserBuf, 0, 16};
  const BufSlice scratch{kScratchBuf, 0, 16};
  for (int node : {0, 1}) {
    s.reserve_slice(node, user);
    s.reserve_slice(node, scratch);
    // Each node sends user[0,16) while receiving into scratch, then combines
    // into the very range its own send is still reading.  Folding in place
    // would let the incoming payload race the outgoing copy.
    s.program(node).ops.push_back(
        Op::sendrecv(1 - node, user, 0, 1 - node, scratch, 0));
    s.program(node).ops.push_back(Op::combine(scratch, user));
  }
  CompiledPlan plan(s);
  for (int node : {0, 1}) {
    const CProgram* p = plan.find_program(node);
    ASSERT_NE(p, nullptr);
    ASSERT_EQ(p->ops.size(), 2u);
    EXPECT_FALSE(p->ops[0].accumulate);
    EXPECT_EQ(p->ops[1].kind, OpKind::kCombine);
  }
}

TEST(FusionTest, PlannerRingReductionFusesEveryCombine) {
  Mesh2D mesh(1, 8);
  Planner planner(MachineParams::paragon(), mesh);
  const Group g = Group::contiguous(8);
  const Schedule s =
      planner.plan(Collective::kCombineToAll, g, /*elems=*/131072,
                   /*elem_size=*/8, /*root=*/0);
  CompiledPlan plan(s);
  int combines = 0, fused = 0;
  for (const auto& p : plan.programs()) {
    for (const auto& op : p.ops) {
      if (op.kind == OpKind::kCombine) ++combines;
      if (op.accumulate) ++fused;
    }
  }
  EXPECT_EQ(combines, 0) << "ring reduction left unfused combines";
  EXPECT_GT(fused, 0);
}

INTERCOM_INSTANTIATE_FABRIC_SUITE(RendezvousTest);
INTERCOM_INSTANTIATE_FABRIC_SUITE(MetricsDecouplingTest);
INTERCOM_INSTANTIATE_FABRIC_SUITE(ReorderValidationTest);

}  // namespace
}  // namespace intercom
