// Executor tests: schedules drive real byte movement through the transport,
// combines apply the ReduceOp, scratch buffers are provisioned per program.
#include <gtest/gtest.h>

#include <thread>

#include "intercom/runtime/executor.hpp"
#include "intercom/util/error.hpp"

namespace intercom {
namespace {

TEST(ExecutorTest, NoProgramIsNoOp) {
  Transport t(2);
  Schedule s;
  std::vector<std::byte> buf(8);
  EXPECT_NO_THROW(execute_program(t, s, 0, buf, 1));
}

TEST(ExecutorTest, TransferMovesBytes) {
  Transport t(2);
  Schedule s;
  const BufSlice slice{kUserBuf, 0, 4};
  s.add_transfer(0, 1, slice, slice);
  std::vector<std::byte> buf0{std::byte{1}, std::byte{2}, std::byte{3},
                              std::byte{4}};
  std::vector<std::byte> buf1(4);
  std::thread t0([&] { execute_program(t, s, 0, buf0, 42); });
  std::thread t1([&] { execute_program(t, s, 1, buf1, 42); });
  t0.join();
  t1.join();
  EXPECT_EQ(buf1, buf0);
}

TEST(ExecutorTest, CombineUsesReduceOp) {
  Transport t(2);
  Schedule s;
  // Node 1 receives 2 doubles into scratch and combines into its user buffer.
  const BufSlice user{kUserBuf, 0, 16};
  const BufSlice scratch{kScratchBuf, 0, 16};
  s.reserve_slice(0, user);
  s.reserve_slice(1, user);
  s.reserve_slice(1, scratch);
  s.program(0).ops.push_back(Op::send(1, user, 0));
  s.program(1).ops.push_back(Op::recv(0, scratch, 0));
  s.program(1).ops.push_back(Op::combine(scratch, user));
  std::vector<double> d0{1.5, 2.5};
  std::vector<double> d1{10.0, 20.0};
  const ReduceOp op = sum_op<double>();
  std::thread th0([&] {
    execute_program(t, s, 0, std::as_writable_bytes(std::span<double>(d0)), 1,
                    &op);
  });
  std::thread th1([&] {
    execute_program(t, s, 1, std::as_writable_bytes(std::span<double>(d1)), 1,
                    &op);
  });
  th0.join();
  th1.join();
  EXPECT_DOUBLE_EQ(d1[0], 11.5);
  EXPECT_DOUBLE_EQ(d1[1], 22.5);
}

TEST(ExecutorTest, CombineWithoutReduceOpThrows) {
  Transport t(1);
  Schedule s;
  const BufSlice a{kUserBuf, 0, 8};
  const BufSlice b{kScratchBuf, 0, 8};
  s.reserve_slice(0, a);
  s.reserve_slice(0, b);
  s.program(0).ops.push_back(Op::combine(b, a));
  std::vector<std::byte> buf(8);
  EXPECT_THROW(execute_program(t, s, 0, buf, 1), Error);
}

TEST(ExecutorTest, CopyMovesWithinBuffers) {
  Transport t(1);
  Schedule s;
  s.reserve_slice(0, BufSlice{kUserBuf, 0, 8});
  s.program(0).ops.push_back(
      Op::copy(BufSlice{kUserBuf, 0, 4}, BufSlice{kUserBuf, 4, 4}));
  std::vector<std::byte> buf{std::byte{9}, std::byte{8}, std::byte{7},
                             std::byte{6}, std::byte{0}, std::byte{0},
                             std::byte{0}, std::byte{0}};
  execute_program(t, s, 0, buf, 1);
  EXPECT_EQ(buf[4], std::byte{9});
  EXPECT_EQ(buf[7], std::byte{6});
}

TEST(ExecutorTest, UserBufferTooSmallThrows) {
  Transport t(2);
  Schedule s;
  const BufSlice slice{kUserBuf, 0, 100};
  s.reserve_slice(0, slice);
  s.program(0).ops.push_back(Op::send(1, slice, 0));
  std::vector<std::byte> tiny(10);
  EXPECT_THROW(execute_program(t, s, 0, tiny, 1), Error);
}

TEST(ExecutorTest, SendRecvExchangesWithoutDeadlock) {
  Transport t(2);
  Schedule s;
  const BufSlice mine{kUserBuf, 0, 8};
  const BufSlice theirs{kUserBuf, 8, 8};
  for (int n : {0, 1}) s.reserve_slice(n, BufSlice{kUserBuf, 0, 16});
  s.program(0).ops.push_back(Op::sendrecv(1, mine, 0, 1, theirs, 1));
  s.program(1).ops.push_back(Op::sendrecv(0, mine, 1, 0, theirs, 0));
  std::vector<double> d0{5.0, 0.0};
  std::vector<double> d1{6.0, 0.0};
  std::thread th0([&] {
    execute_program(t, s, 0, std::as_writable_bytes(std::span<double>(d0)), 3);
  });
  std::thread th1([&] {
    execute_program(t, s, 1, std::as_writable_bytes(std::span<double>(d1)), 3);
  });
  th0.join();
  th1.join();
  EXPECT_DOUBLE_EQ(d0[1], 6.0);
  EXPECT_DOUBLE_EQ(d1[1], 5.0);
}

TEST(ReduceOpsTest, BuiltinsFoldCorrectly) {
  auto apply = [](const ReduceOp& op, std::vector<double> dst,
                  std::vector<double> src) {
    op.fn(reinterpret_cast<std::byte*>(dst.data()),
          reinterpret_cast<const std::byte*>(src.data()),
          dst.size() * sizeof(double));
    return dst;
  };
  EXPECT_EQ(apply(sum_op<double>(), {1, 2}, {10, 20}),
            (std::vector<double>{11, 22}));
  EXPECT_EQ(apply(prod_op<double>(), {2, 3}, {4, 5}),
            (std::vector<double>{8, 15}));
  EXPECT_EQ(apply(max_op<double>(), {1, 9}, {5, 2}),
            (std::vector<double>{5, 9}));
  EXPECT_EQ(apply(min_op<double>(), {1, 9}, {5, 2}),
            (std::vector<double>{1, 2}));
}

TEST(ReduceOpsTest, IntegerOps) {
  std::vector<int> dst{1, 2, 3};
  std::vector<int> src{10, 20, 30};
  const ReduceOp op = sum_op<int>();
  op.fn(reinterpret_cast<std::byte*>(dst.data()),
        reinterpret_cast<const std::byte*>(src.data()), 3 * sizeof(int));
  EXPECT_EQ(dst, (std::vector<int>{11, 22, 33}));
  EXPECT_EQ(op.elem_size, sizeof(int));
}

TEST(ReduceOpsTest, MisalignedLengthThrows) {
  const ReduceOp op = sum_op<double>();
  std::vector<std::byte> buf(12);
  EXPECT_THROW(op.fn(buf.data(), buf.data(), 12), Error);
}

}  // namespace
}  // namespace intercom
