// Allocation accounting for the steady-state data path.  A collective on a
// plan-cache hit must allocate NOTHING: operands are pre-resolved by the
// CompiledPlan, scratch lives in the communicator's reusable arena, eager
// payloads ride recycled pool slabs, and rendezvous payloads copy straight
// into the posted buffer.  This binary replaces global operator new with a
// counting hook and proves the zero, in both send regimes.
//
// Deliberately its own test binary: the counting allocator is process-global
// and would distort the sanitizer builds' interceptors (the TSan suite runs
// intercom_runtime_tests, not this).
#include <gtest/gtest.h>

#include <atomic>
#include <barrier>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <span>
#include <thread>
#include <vector>

#include "intercom/runtime/communicator.hpp"
#include "intercom/runtime/multicomputer.hpp"
#include "intercom/runtime/transport.hpp"
#include "fabric_fixture.hpp"

#include <execinfo.h>
#include <unistd.h>

namespace {
std::atomic<std::uint64_t> g_alloc_count{0};
// With INTERCOM_ALLOC_TRAP set, every allocation inside a measurement
// window dumps a raw backtrace to stderr (symbolize with addr2line) —
// the fastest way to attribute a zero-alloc regression.
std::atomic<bool> g_trap{false};
}  // namespace

// The replaced operators route through malloc/aligned_alloc; GCC's
// mismatched-new-delete analysis sees the malloc inside operator new and
// flags the (correct) free inside operator delete.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"

void* operator new(std::size_t n) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (g_trap.load(std::memory_order_relaxed)) {
    void* frames[32];
    int depth = backtrace(frames, 32);
    backtrace_symbols_fd(frames, depth, STDERR_FILENO);
    write(STDERR_FILENO, "---- alloc ----\n", 16);
  }
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void* operator new(std::size_t n, std::align_val_t a) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::aligned_alloc(static_cast<std::size_t>(a),
                                   (n + static_cast<std::size_t>(a) - 1) &
                                       ~(static_cast<std::size_t>(a) - 1))) {
    return p;
  }
  throw std::bad_alloc();
}
void* operator new[](std::size_t n, std::align_val_t a) {
  return ::operator new(n, a);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

#pragma GCC diagnostic pop

namespace intercom {
namespace {

/// Runs `rounds` of broadcast + all_reduce on persistent node threads and
/// returns the number of global allocations during the measured rounds.
/// Threads are spawned, communicators built, and caches/pools warmed before
/// the measurement window opens, so the delta is the collectives' own.
/// With `use_async`, both collectives are issued non-blocking and held
/// outstanding together, one completed by a test() polling loop and one by
/// wait() — the pooled request states and per-request arenas must recycle
/// without touching the heap just like the blocking path.
/// With `autotune_budget` > 0 the machine runs online autotuned selection;
/// the warm-up window is stretched past the exploration budget so every
/// decision cell has locked in before measurement — the invariant under test
/// is that a locked cell's per-collective work (one atomic choice load, a
/// no-op observe, a counter bump) adds zero allocations to the warm path.
std::uint64_t measured_allocs(const FabricSpec& fabric, std::size_t elems,
                              std::size_t rendezvous_threshold,
                              bool use_async = false, int autotune_budget = 0) {
  constexpr int kNodes = 4;
  // The wire backends stage inbound payloads through a pump thread, so the
  // slab-pool and channel-queue depth the warm path settles at depends on
  // arrival timing, not just the traffic pattern.  A longer warm-up lets the
  // pools reach steady-state depth before the measurement window opens; the
  // invariant measured is unchanged (warm rounds allocate nothing).
  const bool wire = fabric.name == "shm" || fabric.name == "socket";
  const int kWarmupRounds =
      (autotune_budget > 0 ? autotune_budget + 2 : 3) + (wire ? 12 : 0);
  constexpr int kMeasuredRounds = 8;

  Multicomputer mc(Mesh2D(1, kNodes), MachineParams::paragon(), fabric);
  mc.set_rendezvous_threshold(rendezvous_threshold);
  if (autotune_budget > 0) {
    AutotuneConfig config;
    config.mode = AutotuneMode::kOnline;
    config.exploration_budget = autotune_budget;
    mc.set_autotune(config);
  }

  std::barrier sync(kNodes);
  std::atomic<std::uint64_t> before{0};
  std::atomic<std::uint64_t> after{0};
  std::atomic<int> mismatches{0};

  std::vector<std::thread> workers;
  workers.reserve(kNodes);
  for (int id = 0; id < kNodes; ++id) {
    workers.emplace_back([&, id] {
      Node node(mc, id);
      Communicator world = node.world();
      std::vector<double> data(elems);
      std::vector<double> sums(elems);

      auto round = [&] {
        for (std::size_t i = 0; i < elems; ++i) {
          data[i] = id == 0 ? static_cast<double>(i) : 0.0;
          sums[i] = static_cast<double>(id);
        }
        if (use_async) {
          // Two requests outstanding at once on one communicator; one
          // drained by polling, the other by a blocking wait.
          Request rb = world.ibroadcast(std::span<double>(data), 0);
          Request rs = world.iall_reduce_sum(std::span<double>(sums));
          while (!rb.test()) std::this_thread::yield();
          rs.wait();
        } else {
          world.broadcast(std::span<double>(data), 0);
          world.all_reduce_sum(std::span<double>(sums));
        }
        const double want = 0.0 + 1.0 + 2.0 + 3.0;
        for (std::size_t i = 0; i < elems; ++i) {
          if (data[i] != static_cast<double>(i) || sums[i] != want) {
            mismatches.fetch_add(1, std::memory_order_relaxed);
          }
        }
      };

      for (int r = 0; r < kWarmupRounds; ++r) round();
      sync.arrive_and_wait();  // everyone done warming
      if (id == 0) {
        before.store(g_alloc_count.load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
        if (std::getenv("INTERCOM_ALLOC_TRAP")) g_trap.store(true);
      }
      sync.arrive_and_wait();  // snapshot taken, window open
      for (int r = 0; r < kMeasuredRounds; ++r) round();
      sync.arrive_and_wait();  // window closed
      if (id == 0) g_trap.store(false);
      if (id == 0) {
        after.store(g_alloc_count.load(std::memory_order_relaxed),
                    std::memory_order_relaxed);
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(mismatches.load(), 0) << "collective results were wrong";
  return after.load() - before.load();
}

// The zero-alloc warm path must hold on every delivery fabric: SimFabric's
// pacing/accounting is lock-and-atomic work with no heap traffic, so moving
// the machine onto the simulated wire must not cost an allocation either.
class SteadyStateAllocTest : public FabricParamTest {};

// 512 B messages with the threshold pushed sky-high: every send is an eager
// deposit riding a recycled pool slab.
TEST_P(SteadyStateAllocTest, EagerRegimeAllocatesNothingOnCacheHit) {
  EXPECT_EQ(measured_allocs(spec(), /*elems=*/64,
                            /*rendezvous_threshold=*/std::size_t{1} << 30),
            0u);
}

// 512 KB vectors with the default threshold: every collective message slice
// (128 KB) takes the rendezvous path and lands directly in the posted
// buffer.
TEST_P(SteadyStateAllocTest, RendezvousRegimeAllocatesNothingOnCacheHit) {
  EXPECT_EQ(measured_allocs(spec(), /*elems=*/65536,
                            Transport::kDefaultRendezvousThreshold),
            0u);
}

// The non-blocking path on a warm pool: issue, poll, and wait must not
// allocate either — the request state, its arena, and the free list are all
// recycled (PR invariant: async keeps the zero-alloc cache-hit path).
TEST_P(SteadyStateAllocTest, AsyncEagerRegimeAllocatesNothingOnCacheHit) {
  EXPECT_EQ(measured_allocs(spec(), /*elems=*/64,
                            /*rendezvous_threshold=*/std::size_t{1} << 30,
                            /*use_async=*/true),
            0u);
}

TEST_P(SteadyStateAllocTest, AsyncRendezvousRegimeAllocatesNothingOnCacheHit) {
  EXPECT_EQ(measured_allocs(spec(), /*elems=*/65536,
                            Transport::kDefaultRendezvousThreshold,
                            /*use_async=*/true),
            0u);
}

// Online autotuned selection after lock-in: the decision-cache consultation
// on every cache hit must be free.  The warm-up runs the whole exploration
// (which replans and allocates, deliberately); once locked, the measured
// rounds go through choose()'s single atomic load and a no-op observe().
TEST_P(SteadyStateAllocTest, AutotunedSelectionAddsNothingAfterLockIn) {
  EXPECT_EQ(measured_allocs(spec(), /*elems=*/64,
                            /*rendezvous_threshold=*/std::size_t{1} << 30,
                            /*use_async=*/false, /*autotune_budget=*/4),
            0u);
}

TEST_P(SteadyStateAllocTest, AsyncAutotunedSelectionAddsNothingAfterLockIn) {
  EXPECT_EQ(measured_allocs(spec(), /*elems=*/64,
                            /*rendezvous_threshold=*/std::size_t{1} << 30,
                            /*use_async=*/true, /*autotune_budget=*/4),
            0u);
}

// Sanity check on the hook itself: the counter must actually see heap
// activity, or the two zeros above would be vacuous.
TEST_P(SteadyStateAllocTest, CountingHookObservesAllocations) {
  const std::uint64_t before = g_alloc_count.load(std::memory_order_relaxed);
  auto* p = new std::vector<int>(1024);
  delete p;
  EXPECT_GT(g_alloc_count.load(std::memory_order_relaxed), before);
}

INTERCOM_INSTANTIATE_FABRIC_SUITE(SteadyStateAllocTest);

}  // namespace
}  // namespace intercom
