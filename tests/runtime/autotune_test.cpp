// Online autotuned algorithm selection on the threaded runtime (see
// core/decision_cache.hpp): mode semantics (off / seed-only / online),
// explore-then-lock-in, warm starts from a persisted cache file, graceful
// rejection of garbage files, async feedback, and — because the online sweep
// executes *every* candidate — end-to-end correctness of the Träff circulant
// reduce-scatter/allreduce strategies at non-powers-of-two on both fabrics,
// eager and rendezvous.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "intercom/core/decision_cache.hpp"
#include "intercom/runtime/communicator.hpp"
#include "intercom/runtime/executor.hpp"
#include "fabric_fixture.hpp"

namespace intercom {
namespace {

std::string temp_path(const std::string& name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

AutotuneConfig online(int budget, std::string path = "") {
  AutotuneConfig config;
  config.mode = AutotuneMode::kOnline;
  config.exploration_budget = budget;
  config.cache_path = std::move(path);
  return config;
}

/// One verified allreduce round: rank-dependent partials in, the closed-form
/// sum out on every member.  Each round re-derives the inputs so a corrupted
/// schedule from any explored candidate fails loudly.
void allreduce_round(Communicator& world, std::size_t elems) {
  std::vector<double> buf(elems);
  for (std::size_t i = 0; i < elems; ++i) {
    buf[i] = static_cast<double>(world.rank() + 1) + static_cast<double>(i);
  }
  world.all_reduce_sum(std::span<double>(buf));
  const int p = world.size();
  for (std::size_t i = 0; i < elems; ++i) {
    const double want = p * (p + 1) / 2.0 +
                        static_cast<double>(p) * static_cast<double>(i);
    ASSERT_DOUBLE_EQ(buf[i], want) << "rank " << world.rank() << " elem " << i;
  }
}

/// One verified reduce-scatter round: every member checks its own piece.
void reduce_scatter_round(Communicator& world, std::size_t elems) {
  std::vector<double> buf(elems);
  for (std::size_t i = 0; i < elems; ++i) {
    buf[i] = static_cast<double>(world.rank() + 1);
  }
  world.reduce_scatter_sum(std::span<double>(buf));
  const int p = world.size();
  const ElemRange piece = world.piece_of(elems, world.rank());
  for (std::size_t i = piece.lo; i < piece.hi; ++i) {
    ASSERT_DOUBLE_EQ(buf[i], p * (p + 1) / 2.0) << "rank " << world.rank();
  }
}

class AutotuneFabricTest : public FabricParamTest {};

TEST_P(AutotuneFabricTest, OffByDefaultTouchesNoDecisionState) {
  Multicomputer& mc = machine(Mesh2D(1, 4));
  mc.run_spmd([](Node& node) {
    Communicator world = node.world();
    for (int round = 0; round < 3; ++round) allreduce_round(world, 16);
  });
  EXPECT_EQ(mc.metrics().counter("autotune.hit").value(), 0u);
  EXPECT_EQ(mc.metrics().counter("autotune.explore").value(), 0u);
  EXPECT_EQ(mc.autotune().mode, AutotuneMode::kOff);
}

TEST_P(AutotuneFabricTest, OnlineModeExploresThenLocksIn) {
  Multicomputer& mc = machine(Mesh2D(1, 4));
  mc.set_autotune(online(/*budget=*/40));
  mc.run_spmd([](Node& node) {
    Communicator world = node.world();
    for (int round = 0; round < 48; ++round) allreduce_round(world, 32);
  });
  const DecisionCache::CellKey key{Collective::kCombineToAll, 4,
                                   DecisionCache::bucket_of(32 * 8)};
  DecisionCell* cell = mc.autotune_cache().find(key);
  ASSERT_NE(cell, nullptr);
  EXPECT_GE(cell->locked.load(), 0);
  EXPECT_FALSE(cell->winner_label().empty());
  EXPECT_GT(mc.metrics().counter("autotune.explore").value(), 0u);
  EXPECT_GT(mc.metrics().counter("autotune.hit").value(), 0u);
}

TEST_P(AutotuneFabricTest, OnlineSweepExecutesEveryCandidateCorrectly) {
  // The initial exploration sweep visits every candidate once in model
  // order, so after |candidates| verified rounds every algorithm in the set
  // — including the Träff circulant reduce-scatter and its allreduce
  // composition — has moved real data over this fabric.  p = 6: the
  // non-power-of-two case the circulant algorithms exist for.
  Multicomputer& mc = machine(Mesh2D(1, 6));
  mc.set_autotune(online(/*budget=*/96));
  mc.run_spmd([](Node& node) {
    Communicator world = node.world();
    allreduce_round(world, 30);
    reduce_scatter_round(world, 30);
  });
  const DecisionCache::CellKey ar_key{Collective::kCombineToAll, 6,
                                      DecisionCache::bucket_of(30 * 8)};
  const DecisionCache::CellKey rs_key{Collective::kDistributedCombine, 6,
                                      DecisionCache::bucket_of(30 * 8)};
  DecisionCell* ar = mc.autotune_cache().find(ar_key);
  DecisionCell* rs = mc.autotune_cache().find(rs_key);
  ASSERT_NE(ar, nullptr);
  ASSERT_NE(rs, nullptr);
  bool ar_has_circulant = false;
  bool rs_has_circulant = false;
  for (const auto& c : ar->candidates) {
    if (c.strategy.inner == InnerAlg::kCirculant) ar_has_circulant = true;
  }
  for (const auto& c : rs->candidates) {
    if (c.strategy.inner == InnerAlg::kCirculant) rs_has_circulant = true;
  }
  EXPECT_TRUE(ar_has_circulant);
  EXPECT_TRUE(rs_has_circulant);
  const std::size_t ar_rounds = ar->candidates.size() + 2;
  const std::size_t rs_rounds = rs->candidates.size() + 2;
  mc.run_spmd([&](Node& node) {
    Communicator world = node.world();
    // The write-once choice log replays the first trial, then the sweep
    // continues: by round |candidates| every candidate has run at least once.
    for (std::size_t round = 0; round < ar_rounds; ++round) {
      allreduce_round(world, 30);
    }
    for (std::size_t round = 0; round < rs_rounds; ++round) {
      reduce_scatter_round(world, 30);
    }
  });
  for (const auto& c : ar->candidates) {
    EXPECT_GE(c.observations, 1u) << "allreduce candidate " << c.label
                                  << " never executed";
  }
  for (const auto& c : rs->candidates) {
    EXPECT_GE(c.observations, 1u) << "reduce-scatter candidate " << c.label
                                  << " never executed";
  }
}

class AutotuneNonPow2Test : public FabricCrossTest<int> {};

TEST_P(AutotuneNonPow2Test, CirculantSchedulesMoveRealData) {
  // Direct wire-level execution of the forced circulant strategies (not
  // gated on what exploration happens to pick): reduce-scatter and the
  // allreduce composition at every awkward p, on both fabrics.
  const int p = arg();
  Transport t(p, make_fabric(spec(), Mesh2D(1, p)));
  const Planner planner;
  const Group g = Group::contiguous(p);
  const HybridStrategy strategy{{p}, InnerAlg::kCirculant, false};
  const std::size_t elems = 23;
  for (Collective collective :
       {Collective::kDistributedCombine, Collective::kCombineToAll}) {
    const Schedule schedule = planner.plan_with_strategy(
        collective, g, elems, sizeof(double), 0, strategy);
    std::vector<std::vector<double>> bufs(static_cast<std::size_t>(p));
    std::vector<std::thread> threads;
    const ReduceOp op = sum_op<double>();
    for (int r = 0; r < p; ++r) {
      auto& buf = bufs[static_cast<std::size_t>(r)];
      buf.assign(elems, static_cast<double>(r + 1));
      threads.emplace_back([&t, &schedule, r, &buf, &op] {
        execute_program(t, schedule, r,
                        std::as_writable_bytes(std::span<double>(buf)),
                        /*ctx=*/7777, &op);
      });
    }
    for (auto& th : threads) th.join();
    const double want = p * (p + 1) / 2.0;
    for (int r = 0; r < p; ++r) {
      const ElemRange piece = block_piece(ElemRange{0, elems}, p, r);
      for (std::size_t i = piece.lo; i < piece.hi; ++i) {
        EXPECT_DOUBLE_EQ(bufs[static_cast<std::size_t>(r)][i], want)
            << to_string(collective) << " p=" << p << " rank " << r;
      }
      if (collective == Collective::kCombineToAll) {
        for (std::size_t i = 0; i < elems; ++i) {
          EXPECT_DOUBLE_EQ(bufs[static_cast<std::size_t>(r)][i], want)
              << "allreduce p=" << p << " rank " << r;
        }
      }
    }
  }
}

INTERCOM_INSTANTIATE_FABRIC_CROSS_SUITE(AutotuneNonPow2Test,
                                        ::testing::Values(3, 5, 6, 7, 12));

TEST_P(AutotuneFabricTest, RendezvousPathSweepsCleanly) {
  // Same exploration sweep with every payload forced through the rendezvous
  // protocol (threshold 1 byte): candidate schedules must be correct on the
  // sender-waits path too.
  Multicomputer& mc = machine(Mesh2D(1, 5));
  mc.set_rendezvous_threshold(1);
  mc.set_autotune(online(/*budget=*/24));
  mc.run_spmd([](Node& node) {
    Communicator world = node.world();
    for (int round = 0; round < 26; ++round) allreduce_round(world, 17);
  });
  const DecisionCache::CellKey key{Collective::kCombineToAll, 5,
                                   DecisionCache::bucket_of(17 * 8)};
  DecisionCell* cell = mc.autotune_cache().find(key);
  ASSERT_NE(cell, nullptr);
  EXPECT_GE(cell->locked.load(), 0);
}

TEST_P(AutotuneFabricTest, AsyncCollectivesFeedTheCacheToo) {
  Multicomputer& mc = machine(Mesh2D(1, 4));
  mc.set_autotune(online(/*budget=*/12));
  mc.run_spmd([](Node& node) {
    Communicator world = node.world();
    for (int round = 0; round < 16; ++round) {
      std::vector<double> buf(24);
      for (std::size_t i = 0; i < buf.size(); ++i) {
        buf[i] = static_cast<double>(world.rank() + 1);
      }
      Request r = world.iall_reduce_sum(std::span<double>(buf));
      r.wait();
      const int p = world.size();
      for (const double v : buf) ASSERT_DOUBLE_EQ(v, p * (p + 1) / 2.0);
    }
  });
  const DecisionCache::CellKey key{Collective::kCombineToAll, 4,
                                   DecisionCache::bucket_of(24 * 8)};
  DecisionCell* cell = mc.autotune_cache().find(key);
  ASSERT_NE(cell, nullptr);
  EXPECT_GE(cell->locked.load(), 0);
  std::uint64_t total_observations = 0;
  for (const auto& c : cell->candidates) total_observations += c.observations;
  EXPECT_GT(total_observations, 0u);
}

TEST_P(AutotuneFabricTest, SeedModeConsultsButNeverExplores) {
  Multicomputer& mc = machine(Mesh2D(1, 4));
  AutotuneConfig config;
  config.mode = AutotuneMode::kSeed;
  mc.set_autotune(config);
  mc.run_spmd([](Node& node) {
    Communicator world = node.world();
    for (int round = 0; round < 10; ++round) allreduce_round(world, 16);
  });
  EXPECT_EQ(mc.metrics().counter("autotune.explore").value(), 0u);
  EXPECT_GT(mc.metrics().counter("autotune.hit").value(), 0u);
  const DecisionCache::CellKey key{Collective::kCombineToAll, 4,
                                   DecisionCache::bucket_of(16 * 8)};
  DecisionCell* cell = mc.autotune_cache().find(key);
  ASSERT_NE(cell, nullptr);
  // Seed-only mode records nothing: no measurements, no lock-in.
  EXPECT_LT(cell->locked.load(), 0);
  for (const auto& c : cell->candidates) EXPECT_EQ(c.observations, 0u);
}

TEST_P(AutotuneFabricTest, WarmStartSkipsExplorationEntirely) {
  const std::string path = temp_path("warm_" + fabric() + ".json");
  std::remove(path.c_str());
  {
    Multicomputer& mc = machine(Mesh2D(1, 4));
    mc.set_autotune(online(/*budget=*/10, path));
    mc.run_spmd([](Node& node) {
      Communicator world = node.world();
      for (int round = 0; round < 14; ++round) allreduce_round(world, 16);
    });
    const DecisionCache::CellKey key{Collective::kCombineToAll, 4,
                                     DecisionCache::bucket_of(16 * 8)};
    ASSERT_NE(mc.autotune_cache().find(key), nullptr);
    ASSERT_GE(mc.autotune_cache().find(key)->locked.load(), 0);
    std::string error;
    ASSERT_TRUE(mc.save_autotune(&error)) << error;
  }
  // Fresh machine, same fabric and parameters: the loaded winner applies
  // from the very first collective — zero exploration replans.
  Multicomputer& mc = machine(Mesh2D(1, 4));
  mc.set_autotune(online(/*budget=*/10, path));
  mc.run_spmd([](Node& node) {
    Communicator world = node.world();
    for (int round = 0; round < 6; ++round) allreduce_round(world, 16);
  });
  EXPECT_EQ(mc.metrics().counter("autotune.explore").value(), 0u);
  EXPECT_GT(mc.metrics().counter("autotune.hit").value(), 0u);
  const DecisionCache::CellKey key{Collective::kCombineToAll, 4,
                                   DecisionCache::bucket_of(16 * 8)};
  DecisionCell* cell = mc.autotune_cache().find(key);
  ASSERT_NE(cell, nullptr);
  EXPECT_GE(cell->locked.load(), 0);
  std::remove(path.c_str());
}

TEST_P(AutotuneFabricTest, GarbageCacheFileFallsBackToModelSeeding) {
  const std::string path = temp_path("garbage_" + fabric() + ".json");
  {
    std::ofstream out(path);
    out << "{\"version\": 1, \"cells\": [truncated mid-";
  }
  Multicomputer& mc = machine(Mesh2D(1, 4));
  mc.set_autotune(online(/*budget=*/8, path));  // must not throw
  EXPECT_EQ(mc.metrics().counter("autotune.load.failure").value(), 1u);
  // The machine still autotunes from the model seed as if cold.
  mc.run_spmd([](Node& node) {
    Communicator world = node.world();
    for (int round = 0; round < 10; ++round) allreduce_round(world, 16);
  });
  const DecisionCache::CellKey key{Collective::kCombineToAll, 4,
                                   DecisionCache::bucket_of(16 * 8)};
  EXPECT_NE(mc.autotune_cache().find(key), nullptr);
  std::remove(path.c_str());
}

TEST_P(AutotuneFabricTest, PerCommunicatorOverrideOptsIn) {
  // Machine-level default stays off; the communicator opts in collectively.
  Multicomputer& mc = machine(Mesh2D(1, 4));
  mc.run_spmd([](Node& node) {
    Communicator world = node.world();
    world.set_autotune(online(/*budget=*/6));
    for (int round = 0; round < 8; ++round) allreduce_round(world, 16);
  });
  const DecisionCache::CellKey key{Collective::kCombineToAll, 4,
                                   DecisionCache::bucket_of(16 * 8)};
  DecisionCell* cell = mc.autotune_cache().find(key);
  ASSERT_NE(cell, nullptr);
  EXPECT_GE(cell->locked.load(), 0);
  EXPECT_EQ(mc.autotune().mode, AutotuneMode::kOff);
}

INTERCOM_INSTANTIATE_FABRIC_SUITE(AutotuneFabricTest);

}  // namespace
}  // namespace intercom
