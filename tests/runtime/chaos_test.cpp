// Chaos suite: the correctness sweep's collectives replayed under seeded
// fault schedules.  Recoverable faults (drop / duplicate / reorder) must be
// healed transparently by the reliability layer — every collective completes
// bitwise-correct; unrecoverable faults (persistent corruption, fail-stop)
// must surface as the right typed error on every affected node instead of a
// hang.  All injection is seed-driven, so a failure here replays exactly.
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <chrono>
#include <cstring>
#include <numeric>
#include <thread>
#include <vector>

#include "intercom/icc/icc.hpp"
#include "intercom/runtime/communicator.hpp"
#include "intercom/runtime/fault.hpp"
#include "intercom/runtime/multicomputer.hpp"
#include "intercom/runtime/transport.hpp"
#include "intercom/util/error.hpp"
#include "fabric_fixture.hpp"

namespace intercom {
namespace {

using Clock = std::chrono::steady_clock;

// Every suite here runs once per delivery fabric (see fabric_fixture.hpp):
// abort propagation, reliability healing and the typed error taxonomy are
// policy layered above the fabric seam, so their contracts must hold on the
// simulated wire exactly as on the ideal one.
class AbortPropagationTest : public FabricParamTest {};
class ReliabilityTest : public FabricParamTest {};
class ChaosCollectiveTest : public FabricParamTest {};

std::vector<std::byte> bytes_of(const std::string& s) {
  std::vector<std::byte> v(s.size());
  std::memcpy(v.data(), s.data(), s.size());
  return v;
}

std::string string_of(std::span<const std::byte> v) {
  return std::string(reinterpret_cast<const char*>(v.data()), v.size());
}

// ---------------------------------------------------------------------------
// Fail-fast abort propagation.

// The acceptance scenario: one node's body throws before the collective
// moves any data, so without abort propagation every peer would block in
// recv forever (no timeout is armed).  With it, peers unwind promptly with
// AbortedError and run_spmd rethrows the root cause.
TEST_P(AbortPropagationTest, ThrowingNodeUnblocksPeersWithAbortedError) {
  Multicomputer& mc = machine(Mesh2D(2, 2));
  const int p = mc.node_count();
  std::vector<std::atomic<int>> observed(static_cast<std::size_t>(p));
  for (auto& o : observed) o = 0;

  const auto start = Clock::now();
  try {
    mc.run_spmd([&](Node& node) {
      if (node.id() == 3) throw Error("node 3 exploded");
      Communicator world = node.world();
      std::vector<double> data(64, 0.0);
      try {
        world.broadcast(std::span<double>(data), 3);
        observed[static_cast<std::size_t>(node.id())] = 1;  // completed (!?)
      } catch (const AbortedError&) {
        observed[static_cast<std::size_t>(node.id())] = 2;
        throw;
      }
    });
    FAIL() << "run_spmd must rethrow the failing node's exception";
  } catch (const AbortedError& e) {
    FAIL() << "expected the root cause, got AbortedError: " << e.what();
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("node 3 exploded"), std::string::npos)
        << e.what();
  }
  const auto elapsed = Clock::now() - start;
  EXPECT_LT(elapsed, std::chrono::seconds(10)) << "abort did not fail fast";
  for (int id = 0; id < p; ++id) {
    if (id == 3) continue;
    EXPECT_EQ(observed[static_cast<std::size_t>(id)], 2)
        << "node " << id << " was not unblocked by AbortedError";
  }
}

TEST_P(AbortPropagationTest, AbortUnblocksBlockedRecvAndPoisonsFutureOps) {
  Transport& t = transport(2);
  std::atomic<bool> got_aborted{false};
  std::thread receiver([&] {
    std::vector<std::byte> out(4);
    try {
      t.recv(0, 1, 1, 0, out);
    } catch (const AbortedError&) {
      got_aborted = true;
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  t.abort("test abort");
  receiver.join();
  EXPECT_TRUE(got_aborted);
  EXPECT_TRUE(t.aborted());
  EXPECT_THROW(t.send(0, 1, 1, 0, bytes_of("x")), AbortedError);
  std::vector<std::byte> out(1);
  EXPECT_THROW(t.recv(0, 1, 1, 0, out), AbortedError);
  // reset() restores a usable transport.
  t.reset();
  EXPECT_FALSE(t.aborted());
  t.send(0, 1, 1, 0, bytes_of("ok"));
  std::vector<std::byte> ok(2);
  t.recv(0, 1, 1, 0, ok);
  EXPECT_EQ(string_of(ok), "ok");
}

TEST_P(AbortPropagationTest, MachineStaysUsableAfterFailedRun) {
  Multicomputer& mc = machine(Mesh2D(1, 4));
  EXPECT_THROW(mc.run_spmd([&](Node& node) {
    if (node.id() == 0) throw Error("boom");
    std::vector<int> data(8, 0);
    node.world().broadcast(std::span<int>(data), 0);
  }),
               Error);
  // The next run on the same machine must work normally.
  mc.run_spmd([&](Node& node) {
    std::vector<int> data(8, node.id() == 0 ? 9 : 0);
    node.world().broadcast(std::span<int>(data), 0);
    for (int v : data) EXPECT_EQ(v, 9);
  });
}

TEST_P(AbortPropagationTest, FailStopNodeAbortsTheWholeMachine) {
  Multicomputer& mc = machine(Mesh2D(1, 4));
  auto injector = std::make_shared<FaultInjector>(1u);
  injector->fail_stop_after(/*node=*/2, /*k=*/3);
  mc.set_fault_injector(injector);
  mc.set_retry_policy(/*max_retries=*/6, /*base_rto_ms=*/5);

  const auto start = Clock::now();
  EXPECT_THROW(mc.run_spmd([&](Node& node) {
    Communicator world = node.world();
    std::vector<std::int64_t> data(128, node.id());
    for (int round = 0; round < 50; ++round) {
      world.all_reduce_sum(std::span<std::int64_t>(data));
    }
  }),
               AbortedError);
  EXPECT_LT(Clock::now() - start, std::chrono::seconds(20));
  EXPECT_GE(injector->stats().fail_stops, 1u);
}

TEST_P(AbortPropagationTest, IccAbortPoisonsTheMachine) {
  Multicomputer& mc = machine(Mesh2D(1, 4));
  std::vector<std::atomic<int>> aborted(4);
  for (auto& a : aborted) a = 0;
  try {
    mc.run_spmd([&](Node& node) {
      Communicator world = node.world();
      if (node.id() == 1) {
        icc::icc_abort(world, "application requested abort");
        return;
      }
      std::vector<double> data(16, 0.0);
      try {
        world.broadcast(std::span<double>(data), 1);
      } catch (const AbortedError&) {
        aborted[static_cast<std::size_t>(node.id())] = 1;
        throw;
      }
    });
    FAIL() << "expected AbortedError";
  } catch (const AbortedError& e) {
    EXPECT_NE(std::string(e.what()).find("application requested abort"),
              std::string::npos);
  }
  for (int id : {0, 2, 3}) {
    EXPECT_EQ(aborted[static_cast<std::size_t>(id)], 1) << "node " << id;
  }
}

// ---------------------------------------------------------------------------
// Reliability layer at the transport level.

TEST_P(ReliabilityTest, ArmedWithoutFaultsPreservesSemantics) {
  Transport& t = transport(2);
  t.set_reliable(true);
  // FIFO within a flow, matching across tags/contexts, zero-length payloads.
  t.send(0, 1, 1, 0, bytes_of("one"));
  t.send(0, 1, 1, 0, bytes_of("two"));
  t.send(0, 1, 1, 5, bytes_of("tagged"));
  t.send(0, 1, 9, 0, bytes_of("ctx9"));
  t.send(0, 1, 1, 7, {});
  std::vector<std::byte> out3(3);
  t.recv(0, 1, 1, 0, out3);
  EXPECT_EQ(string_of(out3), "one");
  std::vector<std::byte> out6(6);
  t.recv(0, 1, 1, 5, out6);
  EXPECT_EQ(string_of(out6), "tagged");
  t.recv(0, 1, 1, 0, out3);
  EXPECT_EQ(string_of(out3), "two");
  std::vector<std::byte> out4(4);
  t.recv(0, 1, 9, 0, out4);
  EXPECT_EQ(string_of(out4), "ctx9");
  std::vector<std::byte> empty;
  t.recv(0, 1, 1, 7, empty);

  const auto stats = t.reliability_stats();
  EXPECT_EQ(stats.frames_sent, 5u);
  EXPECT_EQ(stats.retransmits, 0u);
  EXPECT_EQ(stats.corrupt_discards, 0u);
}

TEST_P(ReliabilityTest, DroppedFramesAreRetransmitted) {
  Transport& t = transport(2);
  auto injector = std::make_shared<FaultInjector>(1234u);
  FaultSpec spec;
  spec.drop = 0.5;  // every attempt, including retransmissions
  injector->set_default(spec);
  t.set_fault_injector(injector);
  t.set_retry_policy(/*max_retries=*/14, /*base_rto_ms=*/2);

  const int kMessages = 20;
  std::thread sender([&] {
    for (int i = 0; i < kMessages; ++i) {
      std::vector<std::byte> payload(sizeof(int));
      std::memcpy(payload.data(), &i, sizeof(int));
      t.send(0, 1, 3, 0, payload);
    }
  });
  for (int i = 0; i < kMessages; ++i) {
    std::vector<std::byte> out(sizeof(int));
    t.recv(0, 1, 3, 0, out);
    int value = -1;
    std::memcpy(&value, out.data(), sizeof(int));
    EXPECT_EQ(value, i) << "delivery out of order or lost";
  }
  sender.join();
  EXPECT_GT(injector->stats().dropped, 0u);
  EXPECT_GT(t.reliability_stats().retransmits, 0u);
}

TEST_P(ReliabilityTest, DuplicatedFramesAreDiscarded) {
  Transport& t = transport(2);
  auto injector = std::make_shared<FaultInjector>(7u);
  FaultSpec spec;
  spec.duplicate = 1.0;
  injector->set_default(spec);
  t.set_fault_injector(injector);

  for (int i = 0; i < 5; ++i) {
    std::vector<std::byte> payload(sizeof(int));
    std::memcpy(payload.data(), &i, sizeof(int));
    t.send(0, 1, 4, 0, payload);
  }
  for (int i = 0; i < 5; ++i) {
    std::vector<std::byte> out(sizeof(int));
    t.recv(0, 1, 4, 0, out);
    int value = -1;
    std::memcpy(&value, out.data(), sizeof(int));
    EXPECT_EQ(value, i);
  }
  EXPECT_EQ(injector->stats().duplicated, 5u);
  EXPECT_GT(t.reliability_stats().duplicate_discards, 0u);
}

TEST_P(ReliabilityTest, ReorderedFramesAreDeliveredInSequence) {
  Transport& t = transport(2);
  auto injector = std::make_shared<FaultInjector>(99u);
  FaultSpec spec;
  spec.reorder = 1.0;
  injector->set_default(spec);
  t.set_fault_injector(injector);
  t.set_retry_policy(/*max_retries=*/8, /*base_rto_ms=*/2);

  // Odd count: the last frame is parked in limbo with no later deposit to
  // flush it, so the receiver must recover it via retransmission.
  const int kMessages = 3;
  for (int i = 0; i < kMessages; ++i) {
    std::vector<std::byte> payload(sizeof(int));
    std::memcpy(payload.data(), &i, sizeof(int));
    t.send(0, 1, 5, 0, payload);
  }
  for (int i = 0; i < kMessages; ++i) {
    std::vector<std::byte> out(sizeof(int));
    t.recv(0, 1, 5, 0, out);
    int value = -1;
    std::memcpy(&value, out.data(), sizeof(int));
    EXPECT_EQ(value, i) << "sequence numbers must heal reordering";
  }
  EXPECT_GT(injector->stats().reordered, 0u);
}

TEST_P(ReliabilityTest, PersistentCorruptionRaisesCorruptionError) {
  Transport& t = transport(2);
  auto injector = std::make_shared<FaultInjector>(11u);
  FaultSpec spec;
  spec.corrupt = 1.0;  // every delivery attempt is bit-flipped
  injector->set_default(spec);
  t.set_fault_injector(injector);
  t.set_retry_policy(/*max_retries=*/3, /*base_rto_ms=*/2);

  t.send(0, 1, 6, 0, bytes_of("payload"));
  std::vector<std::byte> out(7);
  EXPECT_THROW(t.recv(0, 1, 6, 0, out), CorruptionError);
  EXPECT_GT(t.reliability_stats().corrupt_discards, 0u);
}

TEST_P(ReliabilityTest, ZeroLengthPayloadCorruptionIsStillDetected) {
  Transport& t = transport(2);
  auto injector = std::make_shared<FaultInjector>(12u);
  FaultSpec spec;
  spec.corrupt = 1.0;
  injector->set_default(spec);
  t.set_fault_injector(injector);
  t.set_retry_policy(/*max_retries=*/2, /*base_rto_ms=*/2);

  t.send(0, 1, 6, 1, {});
  std::vector<std::byte> empty;
  EXPECT_THROW(t.recv(0, 1, 6, 1, empty), CorruptionError);
}

// Regression for the v1 framing hole: the digest used to cover the payload
// only, so a bit-flip in the header's sequence number produced a frame that
// still checksummed clean — it was honoured as a (stale or future) frame
// and could poison the reorder buffer.  v2 digests version+seq+length, so
// every header flip — magic, version, seq, or stored digest — must be
// rejected as corrupt and repaired by retransmission.
TEST_P(ReliabilityTest, HeaderBitFlipsAreRejectedAndRepaired) {
  Transport& t = transport(2);
  auto injector = std::make_shared<FaultInjector>(31u);
  FaultSpec spec;
  spec.corrupt_header = 0.5;  // per attempt; retransmissions re-roll
  injector->set_default(spec);
  t.set_fault_injector(injector);
  t.set_retry_policy(/*max_retries=*/14, /*base_rto_ms=*/2);

  const int kMessages = 20;
  std::thread sender([&] {
    for (int i = 0; i < kMessages; ++i) {
      std::vector<std::byte> payload(sizeof(int));
      std::memcpy(payload.data(), &i, sizeof(int));
      t.send(0, 1, 8, 0, payload);
    }
  });
  for (int i = 0; i < kMessages; ++i) {
    std::vector<std::byte> out(sizeof(int));
    t.recv(0, 1, 8, 0, out);
    int value = -1;
    std::memcpy(&value, out.data(), sizeof(int));
    EXPECT_EQ(value, i) << "a header-corrupted frame leaked through";
  }
  sender.join();
  EXPECT_GT(injector->stats().header_corrupted, 0u);
  EXPECT_GT(t.reliability_stats().corrupt_discards, 0u)
      << "header flips must be discarded as corrupt, not honoured";
  EXPECT_GT(t.reliability_stats().retransmits, 0u);
}

TEST_P(ReliabilityTest, PersistentHeaderCorruptionRaisesCorruptionError) {
  Transport& t = transport(2);
  auto injector = std::make_shared<FaultInjector>(32u);
  FaultSpec spec;
  spec.corrupt_header = 1.0;  // every attempt, retransmissions included
  injector->set_default(spec);
  t.set_fault_injector(injector);
  t.set_retry_policy(/*max_retries=*/3, /*base_rto_ms=*/2);

  t.send(0, 1, 8, 1, bytes_of("payload"));
  std::vector<std::byte> out(7);
  EXPECT_THROW(t.recv(0, 1, 8, 1, out), CorruptionError);
  EXPECT_GT(t.reliability_stats().corrupt_discards, 0u);
}

TEST_P(ReliabilityTest, ScopedRulesOnlyAffectMatchingWires) {
  Transport& t = transport(3);
  auto injector = std::make_shared<FaultInjector>(21u);
  FaultSpec corrupting;
  corrupting.corrupt = 1.0;
  injector->add_rule(/*src=*/0, /*dst=*/1, std::nullopt, corrupting);
  t.set_fault_injector(injector);
  t.set_retry_policy(/*max_retries=*/2, /*base_rto_ms=*/2);

  // The 2 -> 1 wire is clean even though 0 -> 1 is hostile.
  t.send(2, 1, 8, 0, bytes_of("clean"));
  std::vector<std::byte> out(5);
  t.recv(2, 1, 8, 0, out);
  EXPECT_EQ(string_of(out), "clean");

  t.send(0, 1, 8, 0, bytes_of("dirty"));
  EXPECT_THROW(t.recv(0, 1, 8, 0, out), CorruptionError);
}

TEST_P(ReliabilityTest, DecisionsAreDeterministicPerSeed) {
  FaultInjector a(42u);
  FaultInjector b(42u);
  FaultInjector c(43u);
  FaultSpec spec;
  spec.drop = 0.3;
  spec.corrupt = 0.3;
  spec.duplicate = 0.3;
  a.set_default(spec);
  b.set_default(spec);
  c.set_default(spec);
  bool seeds_differ = false;
  for (std::uint64_t seq = 0; seq < 64; ++seq) {
    const auto da = a.decide(0, 1, 7, 3, seq, 0, 64);
    const auto db = b.decide(0, 1, 7, 3, seq, 0, 64);
    const auto dc = c.decide(0, 1, 7, 3, seq, 0, 64);
    EXPECT_EQ(da.drop, db.drop);
    EXPECT_EQ(da.corrupt, db.corrupt);
    EXPECT_EQ(da.duplicate, db.duplicate);
    EXPECT_EQ(da.corrupt_bit, db.corrupt_bit);
    if (da.drop != dc.drop || da.corrupt != dc.corrupt) seeds_differ = true;
  }
  EXPECT_TRUE(seeds_differ) << "different seeds should give different fates";
}

// ---------------------------------------------------------------------------
// Chaos sweep: all seven collectives under recoverable fault schedules.

class ChaosSweepTest : public FabricCrossTest<std::uint64_t> {};

TEST_P(ChaosSweepTest, AllSevenCollectivesBitwiseCorrectUnderChaos) {
  const std::uint64_t seed = arg();
  Multicomputer& mc = machine(Mesh2D(2, 3));
  const int p = mc.node_count();
  auto injector = std::make_shared<FaultInjector>(seed);
  FaultSpec spec;
  spec.drop = 0.03;
  spec.duplicate = 0.03;
  spec.reorder = 0.03;
  injector->set_default(spec);
  mc.set_fault_injector(injector);
  mc.set_retry_policy(/*max_retries=*/16, /*base_rto_ms=*/2);

  const std::size_t elems = 257;  // non-round: uneven pieces
  const int root = 2;
  auto global = [](std::size_t i) {
    return static_cast<std::int64_t>(i) * 7 + 11;
  };
  auto partial = [](std::size_t i, int rank) {
    return static_cast<std::int64_t>(i) + rank;
  };
  const std::int64_t rank_sum = static_cast<std::int64_t>(p) *
                                static_cast<std::int64_t>(p - 1) / 2;

  mc.run_spmd([&](Node& node) {
    Communicator world = node.world();
    const int rank = world.rank();
    std::vector<std::int64_t> data(elems);
    const ElemRange mine = world.piece_of(elems, rank);

    // broadcast: root's vector appears everywhere.
    for (std::size_t i = 0; i < elems; ++i) {
      data[i] = rank == root ? global(i) : 0;
    }
    world.broadcast(std::span<std::int64_t>(data), root);
    for (std::size_t i = 0; i < elems; ++i) ASSERT_EQ(data[i], global(i));

    // scatter: each rank ends with its canonical piece of root's vector.
    for (std::size_t i = 0; i < elems; ++i) {
      data[i] = rank == root ? global(i) : -1;
    }
    world.scatter(std::span<std::int64_t>(data), root);
    for (std::size_t i = mine.lo; i < mine.hi; ++i) {
      ASSERT_EQ(data[i], global(i));
    }

    // gather: root assembles every rank's piece.
    std::fill(data.begin(), data.end(), 0);
    for (std::size_t i = mine.lo; i < mine.hi; ++i) data[i] = global(i);
    world.gather(std::span<std::int64_t>(data), root);
    if (rank == root) {
      for (std::size_t i = 0; i < elems; ++i) ASSERT_EQ(data[i], global(i));
    }

    // collect: everyone assembles every rank's piece.
    std::fill(data.begin(), data.end(), 0);
    for (std::size_t i = mine.lo; i < mine.hi; ++i) data[i] = global(i);
    world.collect(std::span<std::int64_t>(data));
    for (std::size_t i = 0; i < elems; ++i) ASSERT_EQ(data[i], global(i));

    // combine_to_one: integer sum of all partials at root (exact).
    for (std::size_t i = 0; i < elems; ++i) data[i] = partial(i, rank);
    world.reduce_sum(std::span<std::int64_t>(data), root);
    if (rank == root) {
      for (std::size_t i = 0; i < elems; ++i) {
        ASSERT_EQ(data[i], static_cast<std::int64_t>(i) *
                                   static_cast<std::int64_t>(p) +
                               rank_sum);
      }
    }

    // combine_to_all: the sum everywhere.
    for (std::size_t i = 0; i < elems; ++i) data[i] = partial(i, rank);
    world.all_reduce_sum(std::span<std::int64_t>(data));
    for (std::size_t i = 0; i < elems; ++i) {
      ASSERT_EQ(data[i], static_cast<std::int64_t>(i) *
                                 static_cast<std::int64_t>(p) +
                             rank_sum);
    }

    // distributed_combine: each rank owns the reduced canonical piece.
    for (std::size_t i = 0; i < elems; ++i) data[i] = partial(i, rank);
    world.reduce_scatter_sum(std::span<std::int64_t>(data));
    for (std::size_t i = mine.lo; i < mine.hi; ++i) {
      ASSERT_EQ(data[i], static_cast<std::int64_t>(i) *
                                 static_cast<std::int64_t>(p) +
                             rank_sum);
    }
  });

  // The run must actually have exercised the fault machinery.
  const auto stats = injector->stats();
  EXPECT_GT(stats.dropped + stats.duplicated + stats.reordered, 0u)
      << "chaos run injected nothing — rates or volume too low";
  EXPECT_GT(mc.transport().reliability_stats().frames_sent, 0u);
}

INTERCOM_INSTANTIATE_FABRIC_CROSS_SUITE(
    ChaosSweepTest, ::testing::Values(std::uint64_t{1}, 20260807u,
                                      0xdeadbeefu));

// Chaos under both send regimes: a threshold of 1 gates every reliable send
// behind the receiver's posted buffer (rendezvous discipline), a huge one
// keeps every send eager/store-and-forward.  Drop/duplicate/reorder healing
// must be regime-independent.
class ChaosRegimeTest : public FabricCrossTest<std::size_t> {};

TEST_P(ChaosRegimeTest, CollectivesHealUnderChaosInBothSendRegimes) {
  Multicomputer& mc = machine(Mesh2D(1, 4));
  mc.set_rendezvous_threshold(arg());
  const int p = mc.node_count();
  auto injector = std::make_shared<FaultInjector>(77u);
  FaultSpec spec;
  spec.drop = 0.04;
  spec.duplicate = 0.04;
  spec.reorder = 0.04;
  injector->set_default(spec);
  mc.set_fault_injector(injector);
  mc.set_retry_policy(/*max_retries=*/16, /*base_rto_ms=*/2);

  const std::size_t elems = 513;
  const std::int64_t rank_sum =
      static_cast<std::int64_t>(p) * static_cast<std::int64_t>(p - 1) / 2;
  mc.run_spmd([&](Node& node) {
    Communicator world = node.world();
    const int rank = world.rank();
    for (int round = 0; round < 4; ++round) {
      std::vector<std::int64_t> data(elems);
      for (std::size_t i = 0; i < elems; ++i) {
        data[i] = static_cast<std::int64_t>(i) + rank;
      }
      world.all_reduce_sum(std::span<std::int64_t>(data));
      for (std::size_t i = 0; i < elems; ++i) {
        ASSERT_EQ(data[i], static_cast<std::int64_t>(i) *
                                   static_cast<std::int64_t>(p) +
                               rank_sum);
      }
      std::vector<std::int64_t> bcast(elems, rank == 1 ? 42 : 0);
      world.broadcast(std::span<std::int64_t>(bcast), 1);
      for (std::size_t i = 0; i < elems; ++i) ASSERT_EQ(bcast[i], 42);
    }
  });
  const auto stats = injector->stats();
  EXPECT_GT(stats.dropped + stats.duplicated + stats.reordered, 0u);
}

INTERCOM_INSTANTIATE_FABRIC_CROSS_SUITE(
    ChaosRegimeTest,
    ::testing::Values(std::size_t{1},  // everything rendezvous-gated
                      std::size_t{1} << 30));  // everything eager

// Online autotuned selection under chaos: the exploration sweep executes
// every candidate schedule — including the circulant reduce-scatter/
// allreduce — on a faulty wire.  The reliability layer must heal each one
// (bitwise-correct results every round) and the decision cell must still
// complete its budget and lock in.
TEST_P(ChaosCollectiveTest, AutotunedExplorationHealsUnderChaos) {
  Multicomputer& mc = machine(Mesh2D(1, 5));
  auto injector = std::make_shared<FaultInjector>(97u);
  FaultSpec spec;
  spec.drop = 0.05;
  spec.duplicate = 0.05;
  spec.reorder = 0.05;
  injector->set_default(spec);
  mc.set_fault_injector(injector);
  mc.set_reliable(true);
  mc.set_retry_policy(/*max_retries=*/20, /*base_rto_ms=*/2);
  AutotuneConfig config;
  config.mode = AutotuneMode::kOnline;
  config.exploration_budget = 10;
  mc.set_autotune(config);
  mc.run_spmd([](Node& node) {
    Communicator world = node.world();
    const int p = world.size();
    for (int round = 0; round < 14; ++round) {
      std::vector<double> buf(21);
      for (auto& v : buf) v = world.rank() + 1.0;
      world.all_reduce_sum(std::span<double>(buf));
      for (double v : buf) ASSERT_DOUBLE_EQ(v, p * (p + 1) / 2.0);
    }
  });
  const DecisionCache::CellKey key{Collective::kCombineToAll, 5,
                                   DecisionCache::bucket_of(21 * 8)};
  DecisionCell* cell = mc.autotune_cache().find(key);
  ASSERT_NE(cell, nullptr);
  EXPECT_GE(cell->locked.load(), 0);
  const auto stats = injector->stats();
  EXPECT_GT(stats.dropped + stats.duplicated + stats.reordered, 0u);
}

TEST_P(ChaosCollectiveTest, IccChaosKnobHealsGdsum) {
  Multicomputer& mc = machine(Mesh2D(1, 4));
  auto injector = icc::icc_set_chaos(mc, /*seed=*/5u, /*drop=*/0.05,
                                     /*duplicate=*/0.05, /*reorder=*/0.05,
                                     /*corrupt=*/0.0);
  mc.set_retry_policy(/*max_retries=*/16, /*base_rto_ms=*/2);
  mc.run_spmd([&](Node& node) {
    Communicator world = node.world();
    for (int round = 0; round < 20; ++round) {
      std::vector<double> x(64, 1.0);
      icc::icc_gdsum(world, x.data(), x.size());
      for (double v : x) ASSERT_EQ(v, 4.0);
    }
  });
  const auto stats = injector->stats();
  EXPECT_GT(stats.dropped + stats.duplicated + stats.reordered, 0u);
}

// ---------------------------------------------------------------------------
// Unrecoverable corruption surfaces as CorruptionError.

// Pairwise exchange: every node both sends and receives, sends are eager, so
// every node independently exhausts its retransmission budget on bit-flipped
// frames and observes a typed CorruptionError.
TEST_P(ChaosCollectiveTest, ExhaustedRetriesRaiseCorruptionErrorOnEveryNode) {
  Multicomputer& mc = machine(Mesh2D(1, 4));
  const int p = mc.node_count();
  auto injector = std::make_shared<FaultInjector>(3u);
  FaultSpec spec;
  spec.corrupt = 1.0;
  injector->set_default(spec);
  mc.set_fault_injector(injector);
  mc.set_retry_policy(/*max_retries=*/3, /*base_rto_ms=*/2);

  std::vector<std::atomic<int>> observed(static_cast<std::size_t>(p));
  for (auto& o : observed) o = 0;
  mc.run_spmd([&](Node& node) {
    Transport& t = node.machine().transport();
    const int id = node.id();
    const int partner = id ^ 1;
    std::vector<std::byte> payload(16, std::byte{0x5a});
    t.send(id, partner, /*ctx=*/77, /*tag=*/0, payload);
    std::vector<std::byte> in(16);
    try {
      t.recv(partner, id, /*ctx=*/77, /*tag=*/0, in);
      observed[static_cast<std::size_t>(id)] = 1;  // should be unreachable
    } catch (const CorruptionError&) {
      observed[static_cast<std::size_t>(id)] = 2;
    }
  });
  for (int id = 0; id < p; ++id) {
    EXPECT_EQ(observed[static_cast<std::size_t>(id)], 2)
        << "node " << id << " did not observe CorruptionError";
  }
  EXPECT_GT(mc.transport().reliability_stats().corrupt_discards, 0u);
}

// Collective-level: the first node to exhaust retries throws CorruptionError
// out of its body; run_spmd rethrows it and fail-fast aborts the peers.
TEST_P(ChaosCollectiveTest, CorruptedCollectiveRethrowsCorruptionError) {
  Multicomputer& mc = machine(Mesh2D(1, 4));
  auto injector = std::make_shared<FaultInjector>(17u);
  FaultSpec spec;
  spec.corrupt = 1.0;
  injector->set_default(spec);
  mc.set_fault_injector(injector);
  mc.set_retry_policy(/*max_retries=*/3, /*base_rto_ms=*/2);

  const auto start = Clock::now();
  EXPECT_THROW(mc.run_spmd([&](Node& node) {
    std::vector<std::int64_t> data(64, node.id());
    node.world().all_reduce_sum(std::span<std::int64_t>(data));
  }),
               CorruptionError);
  EXPECT_LT(Clock::now() - start, std::chrono::seconds(20));
}

// The typed taxonomy stays catchable as plain intercom::Error (existing
// handlers keep working).
TEST_P(ChaosCollectiveTest, TaxonomyDerivesFromError) {
  EXPECT_THROW(throw TimeoutError("t"), Error);
  EXPECT_THROW(throw AbortedError("a"), Error);
  EXPECT_THROW(throw CorruptionError("c"), Error);
}

// ---------------------------------------------------------------------------
// Failed collectives stay visible: metrics book the error and the armed
// trace span is closed with the error flag instead of being dropped.

TEST_P(ChaosCollectiveTest, FailedCollectiveBooksMetricsAndErrorSpan) {
  Multicomputer& mc = machine(Mesh2D(1, 4));
  auto injector = std::make_shared<FaultInjector>(17u);
  FaultSpec spec;
  spec.corrupt = 1.0;
  injector->set_default(spec);
  mc.set_fault_injector(injector);
  mc.set_retry_policy(/*max_retries=*/3, /*base_rto_ms=*/2);
  mc.set_tracing(true);

  EXPECT_THROW(mc.run_spmd([&](Node& node) {
    std::vector<std::int64_t> data(64, node.id());
    node.world().all_reduce_sum(std::span<std::int64_t>(data));
  }),
               CorruptionError);
  mc.set_tracing(false);

  // Every node that raised still counted the call and the error.
  EXPECT_GE(mc.metrics().counter("collective.errors").value(), 1u);
  EXPECT_GE(mc.metrics().counter("collective.calls").value(),
            mc.metrics().counter("collective.errors").value());

  // At least one collective span carries the error flag, with a closed
  // (non-zero-length, well-ordered) time range.
  int error_spans = 0;
  for (int node = 0; node < mc.tracer().node_count(); ++node) {
    const NodeTraceBuffer* buffer = mc.tracer().buffer(node);
    if (buffer == nullptr) continue;
    for (const TraceEvent& e : buffer->events()) {
      if (e.kind != EventKind::kCollective) continue;
      if ((e.a2 & kCollectiveErrorFlag) == 0) continue;
      ++error_spans;
      EXPECT_GE(e.end_ns, e.start_ns);
    }
  }
  EXPECT_GE(error_spans, 1) << "no error-marked collective span was recorded";
}

TEST_P(ChaosCollectiveTest, FailedAsyncCollectiveBooksMetricsAndErrorSpan) {
  Multicomputer& mc = machine(Mesh2D(1, 4));
  auto injector = std::make_shared<FaultInjector>(29u);
  FaultSpec spec;
  spec.corrupt = 1.0;
  injector->set_default(spec);
  mc.set_fault_injector(injector);
  mc.set_retry_policy(/*max_retries=*/3, /*base_rto_ms=*/2);
  mc.set_tracing(true);

  EXPECT_THROW(mc.run_spmd([&](Node& node) {
    Communicator world = node.world();  // must outlive the request
    std::vector<std::int64_t> data(64, node.id());
    Request r = world.iall_reduce_sum(std::span<std::int64_t>(data));
    r.wait();
  }),
               CorruptionError);
  mc.set_tracing(false);

  EXPECT_GE(mc.metrics().counter("collective.errors").value(), 1u);
  int async_error_spans = 0;
  for (int node = 0; node < mc.tracer().node_count(); ++node) {
    const NodeTraceBuffer* buffer = mc.tracer().buffer(node);
    if (buffer == nullptr) continue;
    for (const TraceEvent& e : buffer->events()) {
      if (e.kind != EventKind::kCollective) continue;
      if ((e.a2 & kCollectiveErrorFlag) == 0) continue;
      if ((e.a2 & kCollectiveAsyncFlag) == 0) continue;
      ++async_error_spans;
      EXPECT_GE(e.end_ns, e.start_ns);
    }
  }
  EXPECT_GE(async_error_spans, 1)
      << "no async error-marked collective span was recorded";
}

// ---------------------------------------------------------------------------
// Irregular ("v") collectives under chaos: the uncached interpreter path
// through the reliability layer, both send regimes.

class VChaosTest : public FabricCrossTest<std::size_t> {};

TEST_P(VChaosTest, VVariantsHealRecoverableFaultsInBothRegimes) {
  Multicomputer& mc = machine(Mesh2D(1, 4));
  mc.set_rendezvous_threshold(arg());
  const int p = mc.node_count();
  auto injector = std::make_shared<FaultInjector>(1313u);
  FaultSpec spec;
  spec.drop = 0.04;
  spec.duplicate = 0.04;
  spec.reorder = 0.04;
  injector->set_default(spec);
  mc.set_fault_injector(injector);
  mc.set_retry_policy(/*max_retries=*/16, /*base_rto_ms=*/2);

  // Uneven counts including a zero piece; total 97 elements.
  const std::vector<std::size_t> counts{40, 0, 33, 24};
  const std::size_t total = 97;
  const int root = 2;
  auto base_of = [&](int rank) {
    std::size_t base = 0;
    for (int r = 0; r < rank; ++r) base += counts[static_cast<std::size_t>(r)];
    return base;
  };
  mc.run_spmd([&](Node& node) {
    Communicator world = node.world();
    const int rank = world.rank();
    const std::size_t lo = base_of(rank);
    const std::size_t hi = lo + counts[static_cast<std::size_t>(rank)];
    for (int round = 0; round < 2; ++round) {
      // scatterv then gatherv round trip through root.
      std::vector<std::int64_t> buf(total, 0);
      if (rank == root) {
        for (std::size_t i = 0; i < total; ++i) {
          buf[i] = static_cast<std::int64_t>(i) + 100;
        }
      }
      world.scatterv(std::span<std::int64_t>(buf), counts, root);
      for (std::size_t i = lo; i < hi; ++i) {
        ASSERT_EQ(buf[i], static_cast<std::int64_t>(i) + 100);
        buf[i] += 1000;
      }
      world.gatherv(std::span<std::int64_t>(buf), counts, root);
      if (rank == root) {
        for (std::size_t i = 0; i < total; ++i) {
          ASSERT_EQ(buf[i], static_cast<std::int64_t>(i) + 1100);
        }
      }

      // collectv: every rank contributes its piece, everyone sees all.
      std::vector<std::int64_t> coll(total, 0);
      for (std::size_t i = lo; i < hi; ++i) {
        coll[i] = static_cast<std::int64_t>(i) * 3 + rank;
      }
      world.collectv(std::span<std::int64_t>(coll), counts);
      for (int r = 0; r < p; ++r) {
        const std::size_t rlo = base_of(r);
        const std::size_t rhi = rlo + counts[static_cast<std::size_t>(r)];
        for (std::size_t i = rlo; i < rhi; ++i) {
          ASSERT_EQ(coll[i], static_cast<std::int64_t>(i) * 3 + r);
        }
      }

      // reduce_scatterv: each rank owns the reduced slice.
      std::vector<std::int64_t> red(total);
      for (std::size_t i = 0; i < total; ++i) {
        red[i] = static_cast<std::int64_t>(i) + rank;
      }
      world.reduce_scatterv_bytes(
          std::as_writable_bytes(std::span<std::int64_t>(red)), counts,
          sum_op<std::int64_t>());
      const std::int64_t rank_sum = static_cast<std::int64_t>(p) *
                                    static_cast<std::int64_t>(p - 1) / 2;
      for (std::size_t i = lo; i < hi; ++i) {
        ASSERT_EQ(red[i], static_cast<std::int64_t>(i) *
                                  static_cast<std::int64_t>(p) +
                              rank_sum);
      }
    }
  });
  const auto stats = injector->stats();
  EXPECT_GT(stats.dropped + stats.duplicated + stats.reordered, 0u)
      << "chaos run injected nothing — rates or volume too low";
}

INTERCOM_INSTANTIATE_FABRIC_CROSS_SUITE(
    VChaosTest,
    ::testing::Values(std::size_t{1},  // everything rendezvous-gated
                      std::size_t{1} << 30));  // everything eager

INTERCOM_INSTANTIATE_FABRIC_SUITE(AbortPropagationTest);
INTERCOM_INSTANTIATE_FABRIC_SUITE(ReliabilityTest);
INTERCOM_INSTANTIATE_FABRIC_SUITE(ChaosCollectiveTest);

}  // namespace
}  // namespace intercom
