// Process-launch mode: one OS process per rank over the cross-process
// fabrics.  These are the tests that a threaded harness cannot express —
// real fork/exec isolation, real pid-death detection, real "my peer's
// process is gone" recovery.
//
// Kept out of the sanitizer suites: fork() composes badly with the TSan
// and ASan runtimes (the child inherits an instrumented-but-singular
// thread state), so the whole binary skips itself when built under either.
#include <gtest/gtest.h>

#include <signal.h>
#include <unistd.h>

#include <cstring>
#include <span>
#include <string>
#include <vector>

#include "intercom/runtime/communicator.hpp"
#include "intercom/runtime/multicomputer.hpp"
#include "intercom/runtime/procs.hpp"
#include "intercom/util/error.hpp"

#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
#define INTERCOM_PROCS_SANITIZED 1
#endif
#if defined(__has_feature)
#if __has_feature(thread_sanitizer) || __has_feature(address_sanitizer)
#define INTERCOM_PROCS_SANITIZED 1
#endif
#endif

namespace intercom {
namespace {

class ProcsTest : public ::testing::TestWithParam<std::string> {
 protected:
  void SetUp() override {
#ifdef INTERCOM_PROCS_SANITIZED
    GTEST_SKIP() << "fork-based suites do not run under sanitizers";
#endif
  }
  const std::string& backend() const { return GetParam(); }
};

// Every rank is a real OS process; the collectives must come out
// bit-correct across the wire.  The child verifies its own results and
// reports through its exit code — a parent-side EXPECT cannot see into a
// forked child.
TEST_P(ProcsTest, BroadcastAndAllReduceAcrossProcesses) {
  const Mesh2D mesh(2, 2);
  const auto reports = run_spmd_procs(
      mesh, backend(),
      [](Node& node) {
        Communicator world = node.world();
        const int id = node.id();
        constexpr std::size_t kElems = 1024;
        for (int round = 0; round < 3; ++round) {
          std::vector<double> data(kElems);
          std::vector<double> sums(kElems);
          for (std::size_t i = 0; i < kElems; ++i) {
            data[i] = id == 0 ? static_cast<double>(i + round) : 0.0;
            sums[i] = static_cast<double>(id);
          }
          world.broadcast(std::span<double>(data), 0);
          world.all_reduce_sum(std::span<double>(sums));
          for (std::size_t i = 0; i < kElems; ++i) {
            if (data[i] != static_cast<double>(i + round)) {
              throw std::runtime_error("broadcast mismatch");
            }
            if (sums[i] != 0.0 + 1.0 + 2.0 + 3.0) {
              throw std::runtime_error("all_reduce mismatch");
            }
          }
        }
      });
  ASSERT_EQ(reports.size(), 4u);
  for (const ProcReport& report : reports) {
    EXPECT_TRUE(report.ok())
        << "rank " << report.rank << ": exit_code=" << report.exit_code
        << " signal=" << report.term_signal
        << " watchdog=" << report.killed_by_watchdog;
  }
}

// Regression for the "wait forever" hang: a receiver parked with
// timeout 0 on a wire whose peer process dies must unwind with an error
// in bounded time — not sit in an unbounded futex/poll wait until the
// launcher watchdog shoots it.  Rank 1 SIGKILLs itself (a real crash, no
// teardown courtesy); rank 0's infinite-timeout recv must turn into an
// intercom error, and the run must finish well inside the watchdog
// deadline.
TEST_P(ProcsTest, KilledPeerUnblocksParkedReceiver) {
  const Mesh2D mesh(1, 2);
  ProcOptions options;
  options.tick_ms = 10;        // peer-death detection latency bound
  options.deadline_ms = 20000;  // watchdog only; the test must not need it
  const auto reports = run_spmd_procs(
      mesh, backend(),
      [](Node& node) {
        Transport& t = node.machine().transport();
        if (node.id() == 1) {
          raise(SIGKILL);  // hard crash: no exit handlers, no teardown
        }
        // timeout 0 = wait forever: the receiver has no deadline of its
        // own, so only peer-death detection can unblock it.
        std::vector<std::byte> out(8);
        t.recv(/*src=*/1, /*dst=*/0, /*ctx=*/1, /*tag=*/0,
               std::span<std::byte>(out));
      },
      options);
  ASSERT_EQ(reports.size(), 2u);

  const ProcReport& receiver = reports[0];
  const ProcReport& killed = reports[1];
  EXPECT_TRUE(killed.exited);
  EXPECT_EQ(killed.term_signal, SIGKILL);
  // The receiver must have unwound on its own: alive long enough to see
  // the peer die, then out with an intercom error — never watchdog-killed
  // (that would be the hang this regression pins down).
  EXPECT_TRUE(receiver.exited);
  EXPECT_FALSE(receiver.killed_by_watchdog) << "parked receiver hung";
  EXPECT_EQ(receiver.term_signal, 0);
  EXPECT_EQ(receiver.exit_code, kProcError)
      << "recv from a dead peer must throw an intercom error";
}

// A crashed rank must not wedge ranks that never talk to it directly
// either: peer death poisons the fabric, and fail-fast propagation takes
// the whole cohort down in bounded time.
TEST_P(ProcsTest, PeerDeathFailsTheCohortFast) {
  const Mesh2D mesh(1, 4);
  ProcOptions options;
  options.tick_ms = 10;
  options.deadline_ms = 20000;
  const auto reports = run_spmd_procs(
      mesh, backend(),
      [](Node& node) {
        if (node.id() == 3) raise(SIGKILL);
        Communicator world = node.world();
        for (int round = 0; round < 1000; ++round) {
          std::vector<double> sums(256, 1.0);
          world.all_reduce_sum(std::span<double>(sums));
        }
      },
      options);
  ASSERT_EQ(reports.size(), 4u);
  EXPECT_EQ(reports[3].term_signal, SIGKILL);
  for (int r = 0; r < 3; ++r) {
    EXPECT_TRUE(reports[static_cast<std::size_t>(r)].exited);
    EXPECT_FALSE(reports[static_cast<std::size_t>(r)].killed_by_watchdog)
        << "rank " << r << " wedged on the dead peer";
    EXPECT_EQ(reports[static_cast<std::size_t>(r)].exit_code, kProcError)
        << "rank " << r;
  }
}

INSTANTIATE_TEST_SUITE_P(CrossProcess, ProcsTest,
                         ::testing::Values("shm", "socket"),
                         [](const ::testing::TestParamInfo<std::string>& info) {
                           return info.param;
                         });

}  // namespace
}  // namespace intercom
