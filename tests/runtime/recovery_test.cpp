// Recovery suite: failure detection, deadline budgets, and the ULFM-style
// revoke/shrink/agree protocol (see docs/robustness.md).  A machine that
// loses nodes mid-collective must turn every would-be hang into a typed,
// diagnosable error in bounded time, and the survivors must be able to agree
// on the failure, shrink around it, and keep computing.  All failure
// injection is deterministic (direct throws or seeded crash schedules), so a
// failure here replays exactly.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <iostream>
#include <memory>
#include <random>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "intercom/runtime/communicator.hpp"
#include "intercom/runtime/fault.hpp"
#include "intercom/runtime/health.hpp"
#include "intercom/runtime/multicomputer.hpp"
#include "intercom/runtime/transport.hpp"
#include "intercom/util/error.hpp"
#include "fabric_fixture.hpp"

namespace intercom {
namespace {

using Clock = std::chrono::steady_clock;

// Every suite runs once per delivery fabric (see fabric_fixture.hpp): the
// health detector, deadline scopes and the recovery protocol are policy
// layered above the fabric seam, so their contracts must hold on the
// simulated wire exactly as on the ideal one.
class DeadlineTest : public FabricParamTest {};
class DetectorTest : public FabricParamTest {};
class RevokeTest : public FabricParamTest {};
class AgreeShrinkTest : public FabricParamTest {};
class FaultBudgetTest : public FabricParamTest {};

// ---------------------------------------------------------------------------
// Deadline budgets: hangs become TimeoutError within the budget.

TEST_P(DeadlineTest, DeadlineBudgetTurnsHangIntoTimeoutError) {
  Multicomputer& mc = machine(Mesh2D(1, 2));
  std::string message;
  const auto start = Clock::now();
  mc.run_spmd([&](Node& node) {
    if (node.id() == 1) {
      // Never enters the collective: without a budget, rank 0 would hang.
      std::this_thread::sleep_for(std::chrono::milliseconds(600));
      return;
    }
    Communicator world = node.world();
    world.set_deadline_ms(200);
    EXPECT_EQ(world.deadline_ms(), 200);
    std::vector<double> data(64, 0.0);
    try {
      world.broadcast(std::span<double>(data), /*root=*/1);
      ADD_FAILURE() << "broadcast against an absent root must not complete";
    } catch (const TimeoutError& e) {
      message = e.what();
    }
  });
  EXPECT_LT(Clock::now() - start, std::chrono::seconds(10));
  EXPECT_NE(message.find("deadline budget exhausted"), std::string::npos)
      << message;
}

TEST_P(DeadlineTest, AsyncCollectiveHonorsDeadlineBudgetFromIssue) {
  Multicomputer& mc = machine(Mesh2D(1, 2));
  std::atomic<bool> timed_out{false};
  mc.run_spmd([&](Node& node) {
    if (node.id() == 1) {
      std::this_thread::sleep_for(std::chrono::milliseconds(600));
      return;
    }
    Communicator world = node.world();  // must outlive the request
    world.set_deadline_ms(200);
    std::vector<double> data(64, 0.0);
    Request r = world.ibroadcast(std::span<double>(data), /*root=*/1);
    try {
      r.wait();
    } catch (const TimeoutError&) {
      timed_out = true;
    }
  });
  EXPECT_TRUE(timed_out) << "issue-time deadline did not bound the wait";
}

TEST_P(DeadlineTest, GenerousDeadlineDoesNotPerturbHealthyCollectives) {
  Multicomputer& mc = machine(Mesh2D(1, 4));
  const int p = mc.node_count();
  mc.run_spmd([&](Node& node) {
    Communicator world = node.world();
    world.set_deadline_ms(30000);
    for (int round = 0; round < 10; ++round) {
      std::vector<std::int64_t> data(257, 1);
      world.all_reduce_sum(std::span<std::int64_t>(data));
      for (const std::int64_t v : data) ASSERT_EQ(v, p);
    }
  });
}

// ---------------------------------------------------------------------------
// Failure detection: silent nodes are flagged; verdicts enrich diagnostics.

TEST_P(DetectorTest, WatchdogFlagsSilentNode) {
  Multicomputer& mc = machine(Mesh2D(1, 2));
  mc.set_health_monitoring(true);
  std::atomic<bool> flagged{false};
  mc.run_spmd([&](Node& node) {
    if (node.id() == 1) {
      // Wedged: performs no fabric verb, so its beacons stop.
      std::this_thread::sleep_for(std::chrono::milliseconds(800));
      return;
    }
    HealthMonitor& health = node.machine().health();
    const auto deadline = Clock::now() + std::chrono::seconds(5);
    while (Clock::now() < deadline) {
      health.heard_from(node.id());  // stay alive ourselves while polling
      if (health.state(1) != NodeHealth::kAlive) {
        flagged = true;
        break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  });
  EXPECT_TRUE(flagged) << "detector never suspected the silent node";
}

TEST_P(DetectorTest, PeerFailureVerdictEnrichesTimeout) {
  Multicomputer& mc = machine(Mesh2D(1, 2));
  mc.set_survivable(true);
  std::string message;
  mc.run_spmd([&](Node& node) {
    if (node.id() == 1) throw Error("node 1 dies at once");
    Communicator world = node.world();
    std::vector<double> data(64, 0.0);
    try {
      // No deadline, no recv timeout: only the failure detector's interrupt
      // can unblock this wait.
      world.broadcast(std::span<double>(data), /*root=*/1);
      ADD_FAILURE() << "broadcast from a dead root must not complete";
    } catch (const TimeoutError& e) {
      message = e.what();
    }
  });
  EXPECT_NE(message.find("declared failed by the health detector"),
            std::string::npos)
      << message;
  EXPECT_NE(message.find("health:"), std::string::npos)
      << "timeout diagnostic lacks the peer's health verdict: " << message;
  EXPECT_EQ(mc.health().state(1), NodeHealth::kFailed);
  EXPECT_TRUE(mc.health().is_failed(1));
  const std::vector<int> failed = mc.health().failed_nodes();
  ASSERT_EQ(failed.size(), 1u);
  EXPECT_EQ(failed[0], 1);
}

// ---------------------------------------------------------------------------
// Revocation: one communicator poisoned, siblings untouched.

TEST_P(RevokeTest, RevokePoisonsOnlyThatCommunicator) {
  Multicomputer& mc = machine(Mesh2D(1, 4));
  const int p = mc.node_count();
  mc.run_spmd([&](Node& node) {
    Communicator a = node.world();
    Communicator b = node.group(Group::contiguous(p), /*color=*/1);
    a.revoke();  // idempotent: every rank revokes
    EXPECT_TRUE(a.revoked());
    std::vector<std::int64_t> data(16, 1);
    EXPECT_THROW(a.all_reduce_sum(std::span<std::int64_t>(data)),
                 RevokedError);
    EXPECT_THROW(a.barrier(), RevokedError);
    // The sibling communicator on the same fabric keeps working.
    std::vector<std::int64_t> fine(16, 1);
    b.all_reduce_sum(std::span<std::int64_t>(fine));
    for (const std::int64_t v : fine) ASSERT_EQ(v, p);
  });
}

TEST_P(RevokeTest, RevokeUnblocksPeersParkedInsideTheCollective) {
  Multicomputer& mc = machine(Mesh2D(1, 4));
  const int p = mc.node_count();
  std::vector<std::atomic<int>> observed(static_cast<std::size_t>(p));
  for (auto& o : observed) o = 0;
  mc.run_spmd([&](Node& node) {
    Communicator world = node.world();
    if (node.id() == 0) {
      // Let the peers park inside the broadcast first, then revoke instead
      // of ever participating.
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
      world.revoke();
      return;
    }
    std::vector<double> data(64, 0.0);
    try {
      world.broadcast(std::span<double>(data), /*root=*/0);
    } catch (const RevokedError&) {
      observed[static_cast<std::size_t>(node.id())] = 1;
    }
  });
  for (int id = 1; id < p; ++id) {
    EXPECT_EQ(observed[static_cast<std::size_t>(id)], 1)
        << "rank " << id << " was not unblocked by the revocation";
  }
}

// ---------------------------------------------------------------------------
// Agreement and shrink.

TEST_P(AgreeShrinkTest, AgreeComputesOrDespiteRevocation) {
  Multicomputer& mc = machine(Mesh2D(1, 4));
  mc.run_spmd([&](Node& node) {
    Communicator world = node.world();
    world.revoke();  // agreement must still complete on a revoked comm
    EXPECT_TRUE(world.agree(world.rank() == 2));
    EXPECT_FALSE(world.agree(false));
    EXPECT_TRUE(world.agree(true));
  });
}

TEST_P(AgreeShrinkTest, ShrinkBuildsSurvivorCommunicator) {
  Multicomputer& mc = machine(Mesh2D(1, 4));
  mc.set_survivable(true);
  mc.run_spmd([&](Node& node) {
    if (node.id() == 3) throw Error("node 3 dies");
    Communicator world = node.world();
    world.set_deadline_ms(2000);
    std::vector<std::int64_t> data(64, 1);
    try {
      world.all_reduce_sum(std::span<std::int64_t>(data));
      ADD_FAILURE() << "allreduce with a dead member must not complete";
    } catch (const Error&) {
      world.revoke();
    }
    EXPECT_TRUE(world.agree(true));
    Communicator comm = world.shrink();
    EXPECT_EQ(comm.size(), 3);
    EXPECT_EQ(comm.rank(), world.rank());  // old rank order, compacted
    EXPECT_EQ(comm.generation(), 1u);
    EXPECT_NE(comm.context_base(), world.context_base());
    std::vector<std::int64_t> again(64, 1);
    comm.all_reduce_sum(std::span<std::int64_t>(again));
    for (const std::int64_t v : again) ASSERT_EQ(v, 3);
  });
  EXPECT_TRUE(mc.health().is_failed(3));
}

TEST_P(AgreeShrinkTest, CrashAtStepIsDeterministicAndSurvivable) {
  Multicomputer& mc = machine(Mesh2D(1, 4));
  mc.set_survivable(true);
  auto injector = std::make_shared<FaultInjector>(1u);
  injector->crash_at_step(/*node=*/2, /*step=*/1);
  mc.set_fault_injector(injector);
  mc.set_retry_policy(/*max_retries=*/6, /*base_rto_ms=*/5);
  mc.run_spmd([&](Node& node) {
    Communicator comm = node.world();
    comm.set_deadline_ms(2000);
    bool ok = false;
    for (int attempt = 0; attempt < 4 && !ok; ++attempt) {
      bool failed = false;
      std::vector<std::int64_t> data(64, 1);
      try {
        comm.all_reduce_sum(std::span<std::int64_t>(data));
      } catch (const AbortedError&) {
        throw;  // this node's own scripted crash
      } catch (const Error&) {
        failed = true;
        // Revoke before agreeing: peers parked on the dead epoch unwind
        // immediately and join the agreement instead of riding out their
        // own deadline budget.
        comm.revoke();
      }
      if (!comm.agree(failed)) {
        for (const std::int64_t v : data) ASSERT_EQ(v, comm.size());
        ok = true;
        break;
      }
      Communicator next = comm.shrink();
      comm = std::move(next);
      comm.set_deadline_ms(2000);
    }
    EXPECT_TRUE(ok) << "rank " << node.id() << " never recovered";
  });
  EXPECT_TRUE(mc.health().is_failed(2));
  EXPECT_GE(injector->stats().fail_stops, 1u);
}

// Randomized crash-soak: kill k of p nodes at random plan steps; the
// survivors must agree, shrink, and complete an allreduce.  The seed is the
// suite parameter and is logged, so a failing schedule replays exactly.
class RecoverySoakTest : public FabricCrossTest<std::uint64_t> {};

TEST_P(RecoverySoakTest, SurvivorsAgreeShrinkAndComplete) {
  const std::uint64_t seed = arg();
  SCOPED_TRACE("crash-soak seed " + std::to_string(seed));
  std::cout << "[ SOAK   ] fabric=" << fabric() << " seed=" << seed << "\n";
  Multicomputer& mc = machine(Mesh2D(2, 4));
  const int p = mc.node_count();
  mc.set_survivable(true);
  auto injector = std::make_shared<FaultInjector>(seed);
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<int> victim_dist(1, p - 1);
  std::uniform_int_distribution<std::size_t> step_dist(0, 3);
  const int kVictims = 2;
  std::vector<int> victims;
  while (static_cast<int>(victims.size()) < kVictims) {
    const int v = victim_dist(rng);
    if (std::find(victims.begin(), victims.end(), v) == victims.end()) {
      const std::size_t step = step_dist(rng);
      victims.push_back(v);
      injector->crash_at_step(v, step);
      std::cout << "[ SOAK   ] node " << v << " crashes at plan step " << step
                << "\n";
    }
  }
  mc.set_fault_injector(injector);
  mc.set_retry_policy(/*max_retries=*/6, /*base_rto_ms=*/5);

  mc.run_spmd([&](Node& node) {
    Communicator comm = node.world();
    comm.set_deadline_ms(2000);
    bool ok = false;
    for (int attempt = 0; attempt < p && !ok; ++attempt) {
      bool failed = false;
      std::vector<std::int64_t> data(256, 1);
      try {
        comm.all_reduce_sum(std::span<std::int64_t>(data));
      } catch (const AbortedError&) {
        throw;  // own scripted crash: die for real
      } catch (const Error&) {
        failed = true;
        // Revoke before agreeing: peers parked on the dead epoch unwind
        // immediately and join the agreement instead of riding out their
        // own deadline budget.
        comm.revoke();
      }
      if (!comm.agree(failed)) {
        for (const std::int64_t v : data) ASSERT_EQ(v, comm.size());
        ok = true;
        break;
      }
      Communicator next = comm.shrink();
      comm = std::move(next);
      comm.set_deadline_ms(2000);
    }
    EXPECT_TRUE(ok) << "rank " << node.id() << " never recovered";
  });
  EXPECT_GE(mc.health().failed_nodes().size(), 1u)
      << "soak killed nobody — crash steps were never reached";
  EXPECT_GE(injector->stats().fail_stops, 1u);
}

INTERCOM_INSTANTIATE_FABRIC_CROSS_SUITE(
    RecoverySoakTest,
    ::testing::Values(std::uint64_t{0xC0FFEE}, std::uint64_t{20260808}));

// ---------------------------------------------------------------------------
// Fail-stop budgets on the receive side.

TEST_P(FaultBudgetTest, RecvBudgetFailStopsOnPostedReceive) {
  Transport& t = transport(2);
  auto injector = std::make_shared<FaultInjector>(1u);
  injector->fail_stop_after(/*node=*/1, /*k=*/2,
                           FaultInjector::FailStopOps::kSendsAndRecvs);
  t.set_fault_injector(injector);
  std::vector<std::byte> payload(4, std::byte{0x5a});
  t.send(1, 0, /*ctx=*/7, /*tag=*/0, payload);  // node 1's op #1: survives
  std::vector<std::byte> out(4);
  // Node 1's op #2 is a posted receive — with kSendsAndRecvs it burns the
  // budget and the node fail-stops mid-receive.
  EXPECT_THROW(t.recv(0, 1, /*ctx=*/7, /*tag=*/0, out), AbortedError);
  EXPECT_GE(injector->stats().fail_stops, 1u);
}

TEST_P(FaultBudgetTest, SendOnlyBudgetIgnoresReceives) {
  Transport& t = transport(2);
  auto injector = std::make_shared<FaultInjector>(1u);
  injector->fail_stop_after(/*node=*/1, /*k=*/1);  // default: sends only
  t.set_fault_injector(injector);
  std::vector<std::byte> payload(4, std::byte{0x5a});
  t.send(0, 1, /*ctx=*/7, /*tag=*/0, payload);
  std::vector<std::byte> out(4);
  t.recv(0, 1, /*ctx=*/7, /*tag=*/0, out);  // not charged
  EXPECT_THROW(t.send(1, 0, /*ctx=*/7, /*tag=*/0, payload), AbortedError);
}

INTERCOM_INSTANTIATE_FABRIC_SUITE(DeadlineTest);
INTERCOM_INSTANTIATE_FABRIC_SUITE(DetectorTest);
INTERCOM_INSTANTIATE_FABRIC_SUITE(RevokeTest);
INTERCOM_INSTANTIATE_FABRIC_SUITE(AgreeShrinkTest);
INTERCOM_INSTANTIATE_FABRIC_SUITE(FaultBudgetTest);

}  // namespace
}  // namespace intercom
