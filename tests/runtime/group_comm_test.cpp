// Group communication tests (paper Section 9): collectives within node
// groups — rows and columns of the mesh, rectangular submeshes, and
// unstructured member arrays — plus concurrent disjoint groups.
#include <gtest/gtest.h>

#include "intercom/runtime/communicator.hpp"
#include "intercom/topo/submesh.hpp"
#include "intercom/util/error.hpp"
#include "fabric_fixture.hpp"

namespace intercom {
namespace {

// Runs once per delivery fabric (see fabric_fixture.hpp).
class GroupCommTest : public FabricParamTest {};

TEST_P(GroupCommTest, RowBroadcasts) {
  const Mesh2D mesh(3, 4);
  Multicomputer& mc = machine(mesh);
  mc.run_spmd([&](Node& node) {
    const int my_row = mesh.coord_of(node.id()).row;
    Communicator row = node.group(row_group(mesh, my_row));
    std::vector<int> v{row.rank() == 0 ? 1000 + my_row : -1};
    row.broadcast(std::span<int>(v), 0);
    ASSERT_EQ(v[0], 1000 + my_row);
  });
}

TEST_P(GroupCommTest, ColumnAllReduce) {
  const Mesh2D mesh(4, 3);
  Multicomputer& mc = machine(mesh);
  mc.run_spmd([&](Node& node) {
    const int my_col = mesh.coord_of(node.id()).col;
    Communicator col = node.group(col_group(mesh, my_col));
    std::vector<double> v{static_cast<double>(mesh.coord_of(node.id()).row)};
    col.all_reduce_sum(std::span<double>(v));
    ASSERT_DOUBLE_EQ(v[0], 0.0 + 1 + 2 + 3);
  });
}

TEST_P(GroupCommTest, SimultaneousRowAndColumnPhases) {
  // The SUMMA-style pattern: broadcast within rows, then sum within columns.
  const Mesh2D mesh(3, 3);
  Multicomputer& mc = machine(mesh);
  mc.run_spmd([&](Node& node) {
    const Coord c = mesh.coord_of(node.id());
    Communicator row = node.group(row_group(mesh, c.row));
    Communicator col = node.group(col_group(mesh, c.col));
    std::vector<double> v{row.rank() == 0 ? c.row + 1.0 : 0.0};
    row.broadcast(std::span<double>(v), 0);
    ASSERT_DOUBLE_EQ(v[0], c.row + 1.0);
    col.all_reduce_sum(std::span<double>(v));
    ASSERT_DOUBLE_EQ(v[0], 1.0 + 2.0 + 3.0);
  });
}

TEST_P(GroupCommTest, UnstructuredGroupFallsBackToLinearArray) {
  // A group with no mesh structure must still work — the paper treats it
  // "as though it were a linear array".
  const Mesh2D mesh(3, 4);
  Multicomputer& mc = machine(mesh);
  const Group weird({11, 0, 7, 2, 5});
  mc.run_spmd([&](Node& node) {
    if (!weird.contains(node.id())) return;
    Communicator comm = node.group(weird);
    std::vector<double> v{comm.rank() == 4 ? 42.0 : 0.0};
    comm.broadcast(std::span<double>(v), 4);
    ASSERT_DOUBLE_EQ(v[0], 42.0);
  });
}

TEST_P(GroupCommTest, DisjointGroupsRunConcurrently) {
  const Mesh2D mesh(1, 8);
  Multicomputer& mc = machine(mesh);
  mc.run_spmd([&](Node& node) {
    const Group low({0, 1, 2, 3});
    const Group high({4, 5, 6, 7});
    const Group& mine = node.id() < 4 ? low : high;
    Communicator comm = node.group(mine);
    std::vector<int> v{node.id() < 4 ? 1 : 100};
    comm.all_reduce_sum(std::span<int>(v));
    ASSERT_EQ(v[0], node.id() < 4 ? 4 : 400);
  });
}

TEST_P(GroupCommTest, RectangularSubmeshUsesGroupRanks) {
  const Mesh2D mesh(4, 4);
  Multicomputer& mc = machine(mesh);
  // Rows 1-2 x cols 1-2 in row-major order.
  const Group sub({5, 6, 9, 10});
  mc.run_spmd([&](Node& node) {
    if (!sub.contains(node.id())) return;
    Communicator comm = node.group(sub);
    ASSERT_EQ(comm.size(), 4);
    std::vector<double> v(4, 0.0);
    const ElemRange piece = comm.piece_of(4, comm.rank());
    v[piece.lo] = 10.0 + comm.rank();
    comm.collect(std::span<double>(v));
    for (int r = 0; r < 4; ++r) {
      ASSERT_DOUBLE_EQ(v[static_cast<std::size_t>(r)], 10.0 + r);
    }
  });
}

TEST_P(GroupCommTest, NonMemberCannotCreateCommunicator) {
  Multicomputer& mc = machine(Mesh2D(1, 4));
  EXPECT_THROW(mc.run_spmd([&](Node& node) {
    const Group g({0, 1});
    node.group(g);  // nodes 2 and 3 are not members
  }),
               Error);
}

TEST_P(GroupCommTest, ColorsSeparateIdenticalGroups) {
  Multicomputer& mc = machine(Mesh2D(1, 4));
  mc.run_spmd([&](Node& node) {
    const Group g = Group::contiguous(4);
    Communicator a = node.group(g, 1);
    Communicator b = node.group(g, 2);
    // Interleave operations on the two communicators; contexts keep the
    // traffic separate even though the groups are identical.
    std::vector<int> va{node.id() == 0 ? 5 : 0};
    std::vector<int> vb{node.id() == 1 ? 7 : 0};
    a.broadcast(std::span<int>(va), 0);
    b.broadcast(std::span<int>(vb), 1);
    ASSERT_EQ(va[0], 5);
    ASSERT_EQ(vb[0], 7);
  });
}

TEST_P(GroupCommTest, GroupOfOne) {
  Multicomputer& mc = machine(Mesh2D(1, 3));
  mc.run_spmd([&](Node& node) {
    Communicator self = node.group(Group({node.id()}));
    std::vector<double> v{1.25};
    self.broadcast(std::span<double>(v), 0);
    self.all_reduce_sum(std::span<double>(v));
    ASSERT_DOUBLE_EQ(v[0], 1.25);
  });
}

INTERCOM_INSTANTIATE_FABRIC_SUITE(GroupCommTest);

}  // namespace
}  // namespace intercom
