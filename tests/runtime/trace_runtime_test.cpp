// Tracing under the real runtime: all node threads record concurrently
// during full collective sweeps (TSan covers this file via the
// INTERCOM_SANITIZE=thread build), injected faults surface as retransmit
// events and counters in the trace, and the recv-timeout diagnostic carries
// the trace tail when a tracer is armed.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <memory>
#include <thread>
#include <vector>

#include "intercom/obs/metrics.hpp"
#include "intercom/obs/trace.hpp"
#include "intercom/runtime/communicator.hpp"
#include "intercom/runtime/fault.hpp"
#include "intercom/runtime/multicomputer.hpp"
#include "intercom/runtime/transport.hpp"
#include "intercom/util/error.hpp"

namespace intercom {
namespace {

std::uint64_t count_kind(const Tracer& tracer, int nodes, EventKind kind) {
  std::uint64_t n = 0;
  for (int node = 0; node < nodes; ++node) {
    const NodeTraceBuffer* buffer = tracer.buffer(node);
    if (buffer == nullptr) continue;
    for (const TraceEvent& e : buffer->events()) {
      if (e.kind == kind) ++n;
    }
  }
  return n;
}

// All node threads trace into their per-node rings while running every
// collective; a live reader polls tails concurrently (the recv-timeout
// diagnostic path does exactly this from another node's thread).
TEST(TraceRuntimeTest, ConcurrentSweepRecordsOnEveryNode) {
  Multicomputer mc(Mesh2D(2, 3));
  const int p = mc.node_count();
  mc.set_tracing(true);

  std::atomic<bool> stop{false};
  std::thread poller([&] {
    while (!stop.load(std::memory_order_acquire)) {
      for (int node = 0; node < p; ++node) {
        const NodeTraceBuffer* buffer = mc.tracer().buffer(node);
        if (buffer == nullptr) continue;
        for (const TraceEvent& e : buffer->tail(4)) {
          ASSERT_LE(e.start_ns, e.end_ns);
        }
      }
      std::this_thread::yield();
    }
  });

  mc.run_spmd([](Node& node) {
    Communicator world = node.world();
    std::vector<double> data(256, 1.0 + node.id());
    const std::span<double> span(data);
    for (int round = 0; round < 3; ++round) {
      world.broadcast(span, 0);
      world.scatter(span, 0);
      world.gather(span, 0);
      world.collect(span);
      world.reduce_sum(span, 0);
      world.all_reduce_sum(span);
      world.reduce_scatter_sum(span);
    }
  });
  stop.store(true, std::memory_order_release);
  poller.join();
  mc.set_tracing(false);

  for (int node = 0; node < p; ++node) {
    ASSERT_NE(mc.tracer().buffer(node), nullptr);
    EXPECT_GT(mc.tracer().buffer(node)->recorded(), 0u) << "node " << node;
  }
  EXPECT_EQ(count_kind(mc.tracer(), p, EventKind::kRun),
            static_cast<std::uint64_t>(p));
  EXPECT_GT(count_kind(mc.tracer(), p, EventKind::kCollective), 0u);
  EXPECT_GT(count_kind(mc.tracer(), p, EventKind::kStep), 0u);
  EXPECT_GT(count_kind(mc.tracer(), p, EventKind::kSend), 0u);
  EXPECT_GT(count_kind(mc.tracer(), p, EventKind::kRecv), 0u);
  EXPECT_EQ(mc.metrics().counter("collective.calls").value(),
            static_cast<std::uint64_t>(p) * 3u * 7u);
}

// Chaos integration: injected drops must be visible in the trace, both as
// per-node retransmit instants and as the transport.retransmits counter,
// agreeing with the reliability layer's own statistics.
TEST(TraceRuntimeTest, InjectedDropsSurfaceAsRetransmitEvents) {
  Multicomputer mc(Mesh2D(1, 3));
  auto injector = std::make_shared<FaultInjector>(4242u);
  FaultSpec spec;
  spec.drop = 0.4;
  injector->set_default(spec);
  mc.set_fault_injector(injector);
  mc.set_retry_policy(/*max_retries=*/14, /*base_rto_ms=*/2);

  mc.set_tracing(true);
  mc.run_spmd([](Node& node) {
    Communicator world = node.world();
    std::vector<std::int64_t> data(64, node.id());
    for (int round = 0; round < 10; ++round) {
      world.all_reduce_sum(std::span<std::int64_t>(data));
    }
  });
  mc.set_tracing(false);
  mc.set_fault_injector(nullptr);

  ASSERT_GT(injector->stats().dropped, 0u) << "chaos schedule injected nothing";
  const std::uint64_t retransmits = mc.transport().reliability_stats().retransmits;
  ASSERT_GT(retransmits, 0u);
  EXPECT_EQ(mc.metrics().counter("transport.retransmits").value(), retransmits);
  const std::uint64_t traced =
      count_kind(mc.tracer(), mc.node_count(), EventKind::kRetransmit);
  EXPECT_GT(traced, 0u);
  // Ring wraparound may shed old events but can never invent them.
  EXPECT_LE(traced, retransmits);
}

// Satellite: a recv timeout with a tracer armed appends the recent trace
// tail to the diagnostic, naming the events around the stall.
TEST(TraceRuntimeTest, RecvTimeoutDiagnosticIncludesTraceTailWhenArmed) {
  Transport t(2);
  Tracer tracer(2);
  t.set_tracer(&tracer);
  tracer.arm();
  t.set_recv_timeout_ms(30);

  // Record some wire traffic first so the tail has content.
  std::vector<std::byte> payload(8);
  t.send(0, 1, /*ctx=*/7, /*tag=*/1, payload);
  std::vector<std::byte> out(8);
  t.recv(0, 1, /*ctx=*/7, /*tag=*/1, out);

  try {
    t.recv(0, 1, /*ctx=*/7, /*tag=*/2, out);  // nobody sends tag 2
    FAIL() << "expected TimeoutError";
  } catch (const TimeoutError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("recent trace"), std::string::npos) << what;
    EXPECT_NE(what.find("send"), std::string::npos) << what;
  }

  // Disarmed, the diagnostic stays lean.
  tracer.disarm();
  try {
    t.recv(0, 1, /*ctx=*/7, /*tag=*/3, out);
    FAIL() << "expected TimeoutError";
  } catch (const TimeoutError& e) {
    EXPECT_EQ(std::string(e.what()).find("recent trace"), std::string::npos);
  }
}

// Aborts and node errors land in the trace as instant events carrying the
// failure reason, on the node where they happened.
TEST(TraceRuntimeTest, NodeErrorAndAbortAreTraced) {
  Multicomputer mc(Mesh2D(1, 3));
  mc.set_tracing(true);
  EXPECT_THROW(mc.run_spmd([](Node& node) {
                 if (node.id() == 1) throw Error("deliberate failure");
                 Communicator world = node.world();
                 std::vector<double> data(16, 0.0);
                 world.broadcast(std::span<double>(data), 1);
               }),
               Error);
  mc.set_tracing(false);

  const Tracer& tracer = mc.tracer();
  EXPECT_GE(count_kind(tracer, 3, EventKind::kError), 1u);
  bool found = false;
  ASSERT_NE(tracer.buffer(1), nullptr);
  for (const TraceEvent& e : tracer.buffer(1)->events()) {
    if (e.kind == EventKind::kError &&
        tracer.label_text(e.label).find("deliberate failure") !=
            std::string::npos) {
      found = true;
    }
  }
  EXPECT_TRUE(found) << "error instant missing from failing node's track";
}

// Arming must not leak state across runs: a second traced run starts from
// cleared rings and zeroed metrics.
TEST(TraceRuntimeTest, RearmingClearsPreviousRun) {
  Multicomputer mc(Mesh2D(1, 2));
  auto sweep = [&] {
    mc.run_spmd([](Node& node) {
      Communicator world = node.world();
      std::vector<int> data(32, node.id());
      world.all_reduce_sum(std::span<int>(data));
    });
  };
  mc.set_tracing(true);
  sweep();
  mc.set_tracing(false);
  const std::uint64_t first = mc.metrics().counter("collective.calls").value();
  EXPECT_GT(first, 0u);

  mc.set_tracing(true);
  sweep();
  mc.set_tracing(false);
  EXPECT_EQ(mc.metrics().counter("collective.calls").value(), first);
  EXPECT_EQ(count_kind(mc.tracer(), 2, EventKind::kRun), 2u);
}

}  // namespace
}  // namespace intercom
