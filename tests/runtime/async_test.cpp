// Non-blocking collectives: the seven i-collectives must deliver the same
// Table 1 contracts as their blocking twins, at several group sizes, in both
// send regimes (eager and rendezvous-gated), whether the request completes
// via wait(), a test() polling loop, or the Request destructor — and under
// recoverable fault schedules the reliability layer must heal the polled
// path exactly like the blocking one.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "intercom/runtime/communicator.hpp"
#include "intercom/runtime/fault.hpp"
#include "intercom/runtime/multicomputer.hpp"
#include "intercom/runtime/transport.hpp"
#include "intercom/util/error.hpp"
#include "fabric_fixture.hpp"

namespace intercom {
namespace {

// The machine-backed suites run once per delivery fabric (see
// fabric_fixture.hpp): the async progress engine sits above the fabric seam
// and must behave identically on the simulated wire.
class AsyncRequestTest : public FabricParamTest {};
class AsyncCorruptionTest : public FabricParamTest {};
class CollectiveContextTest : public FabricParamTest {};

// Completes a request by spinning on test() — the progress-on-test path.
// yield() keeps the spin civil on machines with fewer cores than nodes.
void poll_until_done(Request& r) {
  while (!r.test()) std::this_thread::yield();
}

// ---------------------------------------------------------------------------
// Correctness sweep: all seven i-collectives x group size x send regime.
// Half the collectives complete through wait(), half through a test() loop,
// so both completion paths run at every (p, regime) point.

struct SweepCase {
  int rows;
  int cols;
  std::size_t threshold;  // rendezvous threshold: 1 = all rendezvous,
                          // 1<<30 = all eager
};

class AsyncSweepTest : public FabricCrossTest<SweepCase> {};

TEST_P(AsyncSweepTest, AllSevenCollectivesMatchBlockingContracts) {
  const SweepCase param = arg();
  Multicomputer& mc = machine(Mesh2D(param.rows, param.cols));
  mc.set_rendezvous_threshold(param.threshold);
  const int p = mc.node_count();
  const std::size_t elems = 131;  // non-round: uneven pieces
  const int root = p > 2 ? 2 : 0;
  auto global = [](std::size_t i) {
    return static_cast<std::int64_t>(i) * 5 + 3;
  };
  auto partial = [](std::size_t i, int rank) {
    return static_cast<std::int64_t>(i) + 2 * rank;
  };
  const std::int64_t rank_sum = static_cast<std::int64_t>(p) *
                                static_cast<std::int64_t>(p - 1);

  mc.run_spmd([&](Node& node) {
    Communicator world = node.world();
    const int rank = world.rank();
    std::vector<std::int64_t> data(elems);
    const ElemRange mine = world.piece_of(elems, rank);

    // ibroadcast, completed by wait().
    for (std::size_t i = 0; i < elems; ++i) {
      data[i] = rank == root ? global(i) : 0;
    }
    {
      Request r = world.ibroadcast(std::span<std::int64_t>(data), root);
      EXPECT_TRUE(r.valid());
      r.wait();
      EXPECT_FALSE(r.valid());
    }
    for (std::size_t i = 0; i < elems; ++i) ASSERT_EQ(data[i], global(i));

    // iscatter, completed by polling.
    for (std::size_t i = 0; i < elems; ++i) {
      data[i] = rank == root ? global(i) : -1;
    }
    {
      Request r = world.iscatter(std::span<std::int64_t>(data), root);
      poll_until_done(r);
      EXPECT_FALSE(r.valid());
    }
    for (std::size_t i = mine.lo; i < mine.hi; ++i) {
      ASSERT_EQ(data[i], global(i));
    }

    // igather, completed by wait().
    std::fill(data.begin(), data.end(), 0);
    for (std::size_t i = mine.lo; i < mine.hi; ++i) data[i] = global(i);
    world.igather(std::span<std::int64_t>(data), root).wait();
    if (rank == root) {
      for (std::size_t i = 0; i < elems; ++i) ASSERT_EQ(data[i], global(i));
    }

    // icollect, completed by polling.
    std::fill(data.begin(), data.end(), 0);
    for (std::size_t i = mine.lo; i < mine.hi; ++i) data[i] = global(i);
    {
      Request r = world.icollect(std::span<std::int64_t>(data));
      poll_until_done(r);
    }
    for (std::size_t i = 0; i < elems; ++i) ASSERT_EQ(data[i], global(i));

    // ireduce_sum (combine-to-one), completed by wait().
    for (std::size_t i = 0; i < elems; ++i) data[i] = partial(i, rank);
    world.ireduce_sum(std::span<std::int64_t>(data), root).wait();
    if (rank == root) {
      for (std::size_t i = 0; i < elems; ++i) {
        ASSERT_EQ(data[i], static_cast<std::int64_t>(i) *
                                   static_cast<std::int64_t>(p) +
                               rank_sum);
      }
    }

    // iall_reduce_sum (combine-to-all), completed by polling.
    for (std::size_t i = 0; i < elems; ++i) data[i] = partial(i, rank);
    {
      Request r = world.iall_reduce_sum(std::span<std::int64_t>(data));
      poll_until_done(r);
    }
    for (std::size_t i = 0; i < elems; ++i) {
      ASSERT_EQ(data[i], static_cast<std::int64_t>(i) *
                                 static_cast<std::int64_t>(p) +
                             rank_sum);
    }

    // ireduce_scatter_sum (distributed-combine), completed by wait().
    for (std::size_t i = 0; i < elems; ++i) data[i] = partial(i, rank);
    world.ireduce_scatter_sum(std::span<std::int64_t>(data)).wait();
    for (std::size_t i = mine.lo; i < mine.hi; ++i) {
      ASSERT_EQ(data[i], static_cast<std::int64_t>(i) *
                                 static_cast<std::int64_t>(p) +
                             rank_sum);
    }
  });
}

INTERCOM_INSTANTIATE_FABRIC_CROSS_SUITE(
    AsyncSweepTest,
    ::testing::Values(SweepCase{1, 2, 1}, SweepCase{1, 2, std::size_t{1} << 30},
                      SweepCase{1, 3, 1}, SweepCase{1, 3, std::size_t{1} << 30},
                      SweepCase{2, 4, 1}, SweepCase{2, 4, std::size_t{1} << 30},
                      SweepCase{4, 4, 1},
                      SweepCase{4, 4, std::size_t{1} << 30}));

// ---------------------------------------------------------------------------
// Request handle semantics.

TEST_P(AsyncRequestTest, MultipleOutstandingRequestsCompleteInAnyOrder) {
  Multicomputer& mc = machine(Mesh2D(1, 4));
  const int p = mc.node_count();
  const std::size_t elems = 64;
  mc.run_spmd([&](Node& node) {
    Communicator world = node.world();
    const int rank = world.rank();
    std::vector<std::int64_t> a(elems, rank == 0 ? 7 : 0);
    std::vector<std::int64_t> b(elems, rank);
    std::vector<std::int64_t> c(elems, rank == 1 ? 9 : 0);
    // Three requests in flight on one communicator; wait in reverse issue
    // order (each context id is independent on the wire, so this cannot
    // deadlock).
    Request ra = world.ibroadcast(std::span<std::int64_t>(a), 0);
    Request rb = world.iall_reduce_sum(std::span<std::int64_t>(b));
    Request rc = world.ibroadcast(std::span<std::int64_t>(c), 1);
    rc.wait();
    rb.wait();
    ra.wait();
    const std::int64_t rank_sum =
        static_cast<std::int64_t>(p) * static_cast<std::int64_t>(p - 1) / 2;
    for (std::size_t i = 0; i < elems; ++i) {
      ASSERT_EQ(a[i], 7);
      ASSERT_EQ(b[i], rank_sum);
      ASSERT_EQ(c[i], 9);
    }
  });
}

TEST_P(AsyncRequestTest, DestructorCompletesAnUnwaitedRequest) {
  Multicomputer& mc = machine(Mesh2D(1, 3));
  const std::size_t elems = 48;
  mc.run_spmd([&](Node& node) {
    Communicator world = node.world();
    std::vector<double> data(elems, world.rank() == 0 ? 2.5 : 0.0);
    {
      Request r = world.ibroadcast(std::span<double>(data), 0);
      // r goes out of scope incomplete: the destructor must drive it to
      // completion (otherwise the next collective would deadlock and the
      // data below would be unset).
    }
    for (double v : data) ASSERT_EQ(v, 2.5);
    // Communicator still in sync after the dtor-driven completion.
    world.barrier();
  });
}

TEST_P(AsyncRequestTest, MoveTransfersOwnership) {
  Multicomputer& mc = machine(Mesh2D(1, 2));
  mc.run_spmd([&](Node& node) {
    Communicator world = node.world();
    std::vector<int> data(16, world.rank() == 0 ? 5 : 0);
    Request a = world.ibroadcast(std::span<int>(data), 0);
    Request b = std::move(a);
    EXPECT_FALSE(a.valid());
    EXPECT_TRUE(b.valid());
    b.wait();
    EXPECT_FALSE(b.valid());
    for (int v : data) ASSERT_EQ(v, 5);
  });
}

TEST_P(AsyncRequestTest, TestOnEmptyRequestThrows) {
  Request r;
  EXPECT_FALSE(r.valid());
  EXPECT_THROW(r.test(), Error);
  EXPECT_THROW(r.wait(), Error);
}

// Interleaving: work overlapped between issue and completion observes the
// unmodified compute state while the collective progresses via test().
TEST_P(AsyncRequestTest, ComputeBetweenIssueAndWaitOverlaps) {
  Multicomputer& mc = machine(Mesh2D(1, 4));
  const int p = mc.node_count();
  const std::size_t elems = 4096;
  mc.run_spmd([&](Node& node) {
    Communicator world = node.world();
    const int rank = world.rank();
    std::vector<std::int64_t> comm(elems, rank);
    Request r = world.iall_reduce_sum(std::span<std::int64_t>(comm));
    // "Compute" on an unrelated buffer, interleaved with polls.
    std::int64_t acc = 0;
    bool done = false;
    for (int step = 0; step < 64; ++step) {
      for (std::size_t i = 0; i < 512; ++i) {
        acc += static_cast<std::int64_t>(i) * (step + 1);
      }
      if (!done) done = r.test();
    }
    if (!done) r.wait();
    EXPECT_GT(acc, 0);
    const std::int64_t rank_sum =
        static_cast<std::int64_t>(p) * static_cast<std::int64_t>(p - 1) / 2;
    for (std::size_t i = 0; i < elems; ++i) ASSERT_EQ(comm[i], rank_sum);
  });
}

// ---------------------------------------------------------------------------
// Async under fault schedules: the polled progress path must heal
// drop/duplicate/reorder exactly like the blocking one, in both regimes.

class AsyncChaosTest : public FabricCrossTest<std::size_t> {};

TEST_P(AsyncChaosTest, PolledCollectivesHealRecoverableFaults) {
  Multicomputer& mc = machine(Mesh2D(1, 4));
  mc.set_rendezvous_threshold(arg());
  const int p = mc.node_count();
  auto injector = std::make_shared<FaultInjector>(4242u);
  FaultSpec spec;
  spec.drop = 0.04;
  spec.duplicate = 0.04;
  spec.reorder = 0.04;
  injector->set_default(spec);
  mc.set_fault_injector(injector);
  mc.set_retry_policy(/*max_retries=*/16, /*base_rto_ms=*/2);

  const std::size_t elems = 257;
  const std::int64_t rank_sum =
      static_cast<std::int64_t>(p) * static_cast<std::int64_t>(p - 1) / 2;
  mc.run_spmd([&](Node& node) {
    Communicator world = node.world();
    const int rank = world.rank();
    for (int round = 0; round < 4; ++round) {
      std::vector<std::int64_t> data(elems);
      for (std::size_t i = 0; i < elems; ++i) {
        data[i] = static_cast<std::int64_t>(i) + rank;
      }
      Request r = world.iall_reduce_sum(std::span<std::int64_t>(data));
      poll_until_done(r);
      for (std::size_t i = 0; i < elems; ++i) {
        ASSERT_EQ(data[i], static_cast<std::int64_t>(i) *
                                   static_cast<std::int64_t>(p) +
                               rank_sum);
      }
      std::vector<std::int64_t> bcast(elems, rank == 1 ? 13 : 0);
      Request rb = world.ibroadcast(std::span<std::int64_t>(bcast), 1);
      rb.wait();
      for (std::size_t i = 0; i < elems; ++i) ASSERT_EQ(bcast[i], 13);
    }
  });
  const auto stats = injector->stats();
  EXPECT_GT(stats.dropped + stats.duplicated + stats.reordered, 0u)
      << "chaos run injected nothing — rates or volume too low";
}

INTERCOM_INSTANTIATE_FABRIC_CROSS_SUITE(
    AsyncChaosTest,
    ::testing::Values(std::size_t{1},  // everything rendezvous-gated
                      std::size_t{1} << 30));  // everything eager

// Unrecoverable corruption surfaces from wait()/test() as the typed error
// (and books the error — see chaos_test for the metrics/trace assertions).
TEST_P(AsyncCorruptionTest, PersistentCorruptionSurfacesFromWait) {
  Multicomputer& mc = machine(Mesh2D(1, 4));
  auto injector = std::make_shared<FaultInjector>(17u);
  FaultSpec spec;
  spec.corrupt = 1.0;
  injector->set_default(spec);
  mc.set_fault_injector(injector);
  mc.set_retry_policy(/*max_retries=*/3, /*base_rto_ms=*/2);

  EXPECT_THROW(mc.run_spmd([&](Node& node) {
    // The communicator must outlive the request (the i* methods are
    // lvalue-ref-qualified, so `node.world().iall_reduce_sum(...)` would
    // not even compile — the Request would dangle).
    Communicator world = node.world();
    std::vector<std::int64_t> data(64, node.id());
    Request r = world.iall_reduce_sum(std::span<std::int64_t>(data));
    r.wait();  // rethrows; the handle is empty afterwards either way
    EXPECT_FALSE(r.valid());
  }),
               CorruptionError);
}

// ---------------------------------------------------------------------------
// Context-id derivation (the namespace-overflow regression).

TEST_P(CollectiveContextTest, SequencesNeverCollideWithinACommunicator) {
  // The old layout (base << 20 | seq) wrapped into the next namespace after
  // 2^20 operations.  The mixed form must stay collision-free across that
  // boundary: splitmix64 over base + seq*odd is bijective in seq.
  const std::uint64_t base = 0x123456789abcdef0ULL;
  const std::uint64_t boundary = 1ULL << 20;
  std::vector<std::uint64_t> ids;
  for (std::uint64_t seq = boundary - 512; seq < boundary + 512; ++seq) {
    ids.push_back(collective_context(base, seq));
  }
  std::sort(ids.begin(), ids.end());
  EXPECT_EQ(std::adjacent_find(ids.begin(), ids.end()), ids.end())
      << "context ids collided across the 2^20 sequence boundary";
}

TEST_P(CollectiveContextTest, SiblingCommunicatorsStayDisjointPastTheBoundary) {
  // Two live communicators over different groups of one machine.  Simulate
  // each one's id stream crossing 2^20 operations and check the streams
  // never meet — under the old layout, communicator A's ids at
  // seq >= 2^20 landed inside B's namespace whenever hash(B) = hash(A)+1.
  Multicomputer& mc = machine(Mesh2D(1, 4));
  std::atomic<std::uint64_t> base_a{0}, base_b{0};
  mc.run_spmd([&](Node& node) {
    Communicator world = node.world();
    if (node.id() < 2) {
      Communicator left = node.group(Group({0, 1}), /*color=*/0);
      base_a = left.context_base();
    } else {
      Communicator right = node.group(Group({2, 3}), /*color=*/0);
      base_b = right.context_base();
    }
    world.barrier();
  });
  ASSERT_NE(base_a.load(), base_b.load());
  const std::uint64_t boundary = 1ULL << 20;
  std::vector<std::uint64_t> ids;
  for (std::uint64_t seq = boundary - 256; seq < boundary + 256; ++seq) {
    ids.push_back(collective_context(base_a.load(), seq));
    ids.push_back(collective_context(base_b.load(), seq));
  }
  std::sort(ids.begin(), ids.end());
  EXPECT_EQ(std::adjacent_find(ids.begin(), ids.end()), ids.end())
      << "sibling communicators' context ids collided";
}

TEST_P(CollectiveContextTest, CommunicatorUsesMixedContexts) {
  // The communicator's own accounting: sequence numbers advance per
  // collective (blocking and non-blocking alike) and feed the mixer.
  Multicomputer& mc = machine(Mesh2D(1, 2));
  mc.run_spmd([&](Node& node) {
    Communicator world = node.world();
    EXPECT_EQ(world.next_sequence(), 0u);
    std::vector<int> data(8, world.rank() == 0 ? 1 : 0);
    world.broadcast(std::span<int>(data), 0);
    EXPECT_EQ(world.next_sequence(), 1u);
    world.ibroadcast(std::span<int>(data), 0).wait();
    EXPECT_EQ(world.next_sequence(), 2u);
  });
}

INTERCOM_INSTANTIATE_FABRIC_SUITE(AsyncRequestTest);
INTERCOM_INSTANTIATE_FABRIC_SUITE(AsyncCorruptionTest);
INTERCOM_INSTANTIATE_FABRIC_SUITE(CollectiveContextTest);

}  // namespace
}  // namespace intercom
