// Irregular ("v") collective tests: per-rank element counts, including zero
// counts, on the threaded runtime and through the planner.
#include <gtest/gtest.h>

#include "intercom/ir/validate.hpp"
#include "intercom/runtime/communicator.hpp"
#include "intercom/util/error.hpp"

namespace intercom {
namespace {

TEST(VCollectivesTest, CollectvUnevenCounts) {
  Multicomputer mc(Mesh2D(1, 4));
  const std::vector<std::size_t> counts{3, 0, 5, 2};
  mc.run_spmd([&](Node& node) {
    Communicator world = node.world();
    std::vector<double> buf(10, 0.0);
    std::size_t base = 0;
    for (int r = 0; r < world.rank(); ++r) base += counts[static_cast<std::size_t>(r)];
    for (std::size_t k = 0; k < counts[static_cast<std::size_t>(world.rank())]; ++k) {
      buf[base + k] = 10.0 * world.rank() + static_cast<double>(k);
    }
    world.collectv(std::span<double>(buf), counts);
    // Every rank sees every contribution.
    ASSERT_DOUBLE_EQ(buf[0], 0.0);
    ASSERT_DOUBLE_EQ(buf[2], 2.0);
    ASSERT_DOUBLE_EQ(buf[3], 20.0);
    ASSERT_DOUBLE_EQ(buf[7], 24.0);
    ASSERT_DOUBLE_EQ(buf[8], 30.0);
    ASSERT_DOUBLE_EQ(buf[9], 31.0);
  });
}

TEST(VCollectivesTest, ScattervGathervRoundTrip) {
  Multicomputer mc(Mesh2D(1, 3));
  const std::vector<std::size_t> counts{4, 1, 2};
  mc.run_spmd([&](Node& node) {
    Communicator world = node.world();
    std::vector<int> buf(7, 0);
    if (world.rank() == 0) {
      for (int i = 0; i < 7; ++i) buf[static_cast<std::size_t>(i)] = 100 + i;
    }
    world.scatterv(std::span<int>(buf), counts, 0);
    std::size_t base = 0;
    for (int r = 0; r < world.rank(); ++r) base += counts[static_cast<std::size_t>(r)];
    for (std::size_t k = 0; k < counts[static_cast<std::size_t>(world.rank())]; ++k) {
      ASSERT_EQ(buf[base + k], 100 + static_cast<int>(base + k));
      buf[base + k] += 1000;
    }
    world.gatherv(std::span<int>(buf), counts, 0);
    if (world.rank() == 0) {
      for (int i = 0; i < 7; ++i) {
        ASSERT_EQ(buf[static_cast<std::size_t>(i)], 1100 + i);
      }
    }
  });
}

TEST(VCollectivesTest, ReduceScattervZeroCounts) {
  Multicomputer mc(Mesh2D(1, 4));
  const std::vector<std::size_t> counts{0, 4, 0, 2};
  mc.run_spmd([&](Node& node) {
    Communicator world = node.world();
    std::vector<double> buf(6);
    for (int i = 0; i < 6; ++i) {
      buf[static_cast<std::size_t>(i)] = world.rank() + 1.0;
    }
    world.reduce_scatterv_bytes(std::as_writable_bytes(std::span<double>(buf)),
                                counts, sum_op<double>());
    if (world.rank() == 1) {
      for (int i = 0; i < 4; ++i) {
        ASSERT_DOUBLE_EQ(buf[static_cast<std::size_t>(i)], 10.0);
      }
    }
    if (world.rank() == 3) {
      ASSERT_DOUBLE_EQ(buf[4], 10.0);
      ASSERT_DOUBLE_EQ(buf[5], 10.0);
    }
  });
}

TEST(VCollectivesTest, PlannerValidatesVPlans) {
  const Planner planner(MachineParams::paragon());
  const Group g = Group::contiguous(5);
  const std::vector<std::size_t> counts{7, 0, 3, 9, 1};
  for (const Schedule& s :
       {planner.plan_scatterv(g, counts, 8, 2),
        planner.plan_gatherv(g, counts, 8, 0),
        planner.plan_collectv(g, counts, 8),
        planner.plan_distributed_combinev(g, counts, 8)}) {
    const auto v = validate(s);
    EXPECT_TRUE(v.ok) << s.algorithm() << "\n" << v.message();
  }
}

TEST(VCollectivesTest, CollectvPicksShortAlgorithmForTinyVectors) {
  const Planner planner(MachineParams::paragon());
  const Group g = Group::contiguous(32);
  // Tiny vectors are latency-bound: the circulant algorithm's ceil(log2 p)
  // startups beat both the ring's p-1 and gather+broadcast's 2*ceil(log2 p).
  const std::vector<std::size_t> tiny(32, 1);
  const Schedule s = planner.plan_collectv(g, tiny, 1);
  EXPECT_NE(s.algorithm().find("circulant"), std::string::npos);
  std::vector<std::size_t> huge(32, 1 << 16);
  const Schedule s2 = planner.plan_collectv(g, huge, 1);
  EXPECT_NE(s2.algorithm().find("bucket"), std::string::npos);
}

TEST(VCollectivesTest, CountArityChecked) {
  const Planner planner;
  const Group g = Group::contiguous(4);
  EXPECT_THROW(planner.plan_scatterv(g, {1, 2}, 8, 0), Error);
}

}  // namespace
}  // namespace intercom
