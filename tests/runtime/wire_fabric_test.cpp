// Soak tests for the cross-process wire backends under injected loss and
// reordering.  The parameterized runtime suites already prove behavioural
// parity; what they don't do is hammer one wire with a lossy schedule long
// enough to prove the reliability layer's retransmission machinery really
// engages over a byte-ring / TCP crossing — chunked large payloads, pump
// staging, and all.  These suites always run both wire backends regardless
// of INTERCOM_FABRIC (they are the wire's own tests, not the policy
// stack's).
#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "intercom/runtime/communicator.hpp"
#include "intercom/runtime/fabric_registry.hpp"
#include "intercom/runtime/fault.hpp"
#include "intercom/runtime/multicomputer.hpp"
#include "intercom/runtime/transport.hpp"

namespace intercom {
namespace {

FabricSpec wire_spec(const std::string& name) {
  FabricSpec spec;
  spec.name = name;
  // Small rings so payloads above 64 KB stream through in chunks, and a
  // short tick so bounded parks cycle often during the soak.
  spec.wire.ring_bytes = std::size_t{1} << 16;
  spec.wire.tick_ms = 10;
  return spec;
}

class WireSoakTest : public ::testing::TestWithParam<std::string> {
 protected:
  const std::string& backend() const { return GetParam(); }
};

// Loss + reorder on one flow, payload sizes straddling the ring capacity:
// every message must come out intact and in order, and the retransmit
// counters must show the recovery path actually ran (a quiet wire would
// mean the faults never landed).
TEST_P(WireSoakTest, LossAndReorderSoakRecoversEveryPayload) {
  Transport t(2, make_fabric(wire_spec(backend()), Mesh2D(1, 2)));
  auto injector = std::make_shared<FaultInjector>(4242u);
  FaultSpec spec;
  spec.drop = 0.25;
  spec.reorder = 0.25;
  injector->set_default(spec);
  t.set_fault_injector(injector);
  t.set_retry_policy(/*max_retries=*/20, /*base_rto_ms=*/2);

  const std::size_t sizes[] = {1, 256, 4096, (std::size_t{1} << 16) + 13};
  const int kMessages = 48;
  std::thread sender([&] {
    for (int i = 0; i < kMessages; ++i) {
      const std::size_t n = sizes[static_cast<std::size_t>(i) % 4];
      std::vector<std::byte> payload(n);
      for (std::size_t j = 0; j < n; ++j) {
        payload[j] = static_cast<std::byte>((j + static_cast<std::size_t>(i)) &
                                            0xff);
      }
      t.send(0, 1, 2, 0, payload);
    }
  });
  for (int i = 0; i < kMessages; ++i) {
    const std::size_t n = sizes[static_cast<std::size_t>(i) % 4];
    std::vector<std::byte> out(n);
    t.recv(0, 1, 2, 0, out);
    for (std::size_t j = 0; j < n; ++j) {
      ASSERT_EQ(out[j], static_cast<std::byte>(
                            (j + static_cast<std::size_t>(i)) & 0xff))
          << "payload " << i << " corrupted at byte " << j << " on "
          << backend();
    }
  }
  sender.join();
  EXPECT_GT(injector->stats().dropped, 0u) << "soak never exercised loss";
  EXPECT_GT(t.reliability_stats().retransmits, 0u)
      << "loss on the wire must drive retransmissions";
}

// The whole policy stack over a lossy wire: collectives on every node,
// frames dropped in flight, results still bit-correct.
TEST_P(WireSoakTest, CollectivesComeOutCorrectUnderLoss) {
  Multicomputer mc(Mesh2D(2, 2), MachineParams::paragon(),
                   wire_spec(backend()));
  auto injector = std::make_shared<FaultInjector>(99u);
  FaultSpec spec;
  spec.drop = 0.15;
  injector->set_default(spec);
  mc.set_fault_injector(injector);
  mc.set_retry_policy(/*max_retries=*/20, /*base_rto_ms=*/2);

  mc.run_spmd([](Node& node) {
    Communicator world = node.world();
    constexpr std::size_t kElems = 512;
    for (int round = 0; round < 4; ++round) {
      std::vector<double> data(kElems);
      std::vector<double> sums(kElems);
      for (std::size_t i = 0; i < kElems; ++i) {
        data[i] = node.id() == 0 ? static_cast<double>(i) : 0.0;
        sums[i] = 1.0;
      }
      world.broadcast(std::span<double>(data), 0);
      world.all_reduce_sum(std::span<double>(sums));
      for (std::size_t i = 0; i < kElems; ++i) {
        ASSERT_EQ(data[i], static_cast<double>(i));
        ASSERT_EQ(sums[i], 4.0);
      }
    }
  });
  EXPECT_GT(injector->stats().dropped, 0u);
  EXPECT_GT(mc.transport().reliability_stats().retransmits, 0u);
}

INSTANTIATE_TEST_SUITE_P(Wire, WireSoakTest,
                         ::testing::Values("shm", "socket"),
                         [](const ::testing::TestParamInfo<std::string>& info) {
                           return info.param;
                         });

}  // namespace
}  // namespace intercom
