// Shared fixture parameterizing runtime suites over the delivery fabric.
//
// Every TEST_P in a suite derived from FabricParamTest runs once per
// registered backend under test: "inproc" (the ideal in-process wire),
// "sim" (the wormhole-mesh model with time_scale = 0, i.e. full link and
// conflict accounting but no wall-clock pacing, so the suites stay fast),
// "shm" (cross-process byte rings in a shared segment, run in threaded mode
// so every payload round-trips through the rings and the pump), and
// "socket" (TCP loopback framing, threaded mode likewise).  The point is
// the layering guarantee of fabric.hpp: reliability, fault injection, the
// eager/rendezvous split, abort propagation, tracing and the async progress
// engine are policy *above* the fabric seam, so every behavioural contract
// they promise must hold bit-for-bit on any backend.
//
// Setting INTERCOM_FABRIC=<name> restricts the instantiations to that one
// backend — the CI legs run the whole runtime suite per backend that way.
//
// Usage:
//   class MySuite : public FabricParamTest {};
//   TEST_P(MySuite, DoesTheThing) {
//     Multicomputer& mc = machine(Mesh2D(2, 2));
//     ...
//   }
//   INTERCOM_INSTANTIATE_FABRIC_SUITE(MySuite);
#pragma once

#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <string>
#include <string_view>
#include <tuple>
#include <utility>
#include <vector>

#include "intercom/runtime/fabric_registry.hpp"
#include "intercom/runtime/multicomputer.hpp"
#include "intercom/runtime/transport.hpp"
#include "intercom/topo/mesh.hpp"

namespace intercom {

/// The backends the parameterized suites instantiate over: all four, or the
/// single backend INTERCOM_FABRIC names.
inline const std::vector<std::string>& fabrics_under_test() {
  static const std::vector<std::string> fabrics = [] {
    const char* only = std::getenv("INTERCOM_FABRIC");
    if (only != nullptr && *only != '\0') {
      return std::vector<std::string>{only};
    }
    return std::vector<std::string>{"inproc", "sim", "shm", "socket"};
  }();
  return fabrics;
}

/// FabricSpec for backend `name` as the test suites use it: the sim backend
/// keeps its accounting but never sleeps; the wire backends run with small
/// rings (so large-payload chunk streaming is exercised) and a short tick
/// (so bounded-wait regressions surface fast).
inline FabricSpec test_fabric_spec(const std::string& name) {
  FabricSpec spec;
  spec.name = name;
  spec.sim.time_scale = 0.0;
  // INTERCOM_SIM_ENGINE=fluid|packet pins the sim backend's contention
  // model — the CI fluid leg proves every behavioural contract still holds
  // on the pre-event-engine model.
  if (const char* engine = std::getenv("INTERCOM_SIM_ENGINE")) {
    if (std::string_view(engine) == "fluid") {
      spec.sim.engine = SimEngine::kFluid;
    } else if (std::string_view(engine) == "packet") {
      spec.sim.engine = SimEngine::kPacket;
    }
  }
  spec.wire.ring_bytes = std::size_t{1} << 16;
  spec.wire.tick_ms = 10;
  return spec;
}

/// Base fixture: GetParam() is the fabric backend name.
class FabricParamTest : public ::testing::TestWithParam<std::string> {
 protected:
  const std::string& fabric() const { return GetParam(); }
  FabricSpec spec() const { return test_fabric_spec(fabric()); }
  /// True for the cross-process backends, whose payloads serialize through
  /// a real OS transport — per-crossing staging (one pump-side slab) is
  /// inherent there, so in-process zero-copy assertions don't apply.
  bool cross_process() const { return fabric() == "shm" || fabric() == "socket"; }

  /// A machine of shape `mesh` on the fabric under test.  Owned by the
  /// fixture (Multicomputer is not movable); each call replaces the last.
  Multicomputer& machine(Mesh2D mesh,
                         MachineParams params = MachineParams::paragon()) {
    mc_ = std::make_unique<Multicomputer>(mesh, params, spec());
    return *mc_;
  }

  /// A bare transport over `n` nodes on the fabric under test (a 1 x n mesh
  /// for the sim backend's routing).  Owned by the fixture.
  Transport& transport(int n) {
    t_ = std::make_unique<Transport>(n, make_fabric(spec(), Mesh2D(1, n)));
    return *t_;
  }

 private:
  std::unique_ptr<Multicomputer> mc_;
  std::unique_ptr<Transport> t_;
};

/// Cross-product fixture for suites that already sweep a value parameter
/// (fault seeds, rendezvous regimes, ...): the param is (fabric, value) and
/// the suite runs the full sweep on every backend.
template <typename T>
class FabricCrossTest
    : public ::testing::TestWithParam<std::tuple<std::string, T>> {
 protected:
  const std::string& fabric() const { return std::get<0>(this->GetParam()); }
  T arg() const { return std::get<1>(this->GetParam()); }
  FabricSpec spec() const { return test_fabric_spec(fabric()); }

  Multicomputer& machine(Mesh2D mesh,
                         MachineParams params = MachineParams::paragon()) {
    mc_ = std::make_unique<Multicomputer>(mesh, params, spec());
    return *mc_;
  }

 private:
  std::unique_ptr<Multicomputer> mc_;
};

}  // namespace intercom

/// Instantiates `Suite` over every backend under test.  The test name
/// suffix is the backend, so `--gtest_filter=*.*/sim` selects the
/// sim-fabric leg (likewise /shm, /socket).
#define INTERCOM_INSTANTIATE_FABRIC_SUITE(Suite)                       \
  INSTANTIATE_TEST_SUITE_P(                                            \
      Fabrics, Suite,                                                  \
      ::testing::ValuesIn(::intercom::fabrics_under_test()),           \
      [](const ::testing::TestParamInfo<std::string>& info) {          \
        return info.param;                                             \
      })

/// Instantiates a FabricCrossTest<T> `Suite` over every backend under test
/// crossed with `...` (a ::testing::Values(...) of the suite's own
/// parameter).  Names render as <fabric>_<index>, e.g.
/// Fabrics/MySuite.Case/sim_1.
#define INTERCOM_INSTANTIATE_FABRIC_CROSS_SUITE(Suite, ...)            \
  INSTANTIATE_TEST_SUITE_P(                                            \
      Fabrics, Suite,                                                  \
      ::testing::Combine(                                              \
          ::testing::ValuesIn(::intercom::fabrics_under_test()),       \
          __VA_ARGS__),                                                \
      [](const ::testing::TestParamInfo<typename Suite::ParamType>&    \
             info) {                                                   \
        return std::get<0>(info.param) + "_" +                         \
               std::to_string(info.index);                             \
      })
