// Threaded runtime stress: randomized sequences of group collectives on
// real threads — overlapping row/column phases, repeated communicators,
// and interleaved world/group traffic.  Deterministic seeds.
#include <gtest/gtest.h>

#include <cmath>

#include "intercom/runtime/communicator.hpp"
#include "intercom/topo/submesh.hpp"
#include "intercom/util/rng.hpp"

namespace intercom {
namespace {

TEST(RuntimeStressTest, ManyIterationsOfMixedCollectives) {
  const Mesh2D mesh(2, 4);
  Multicomputer mc(mesh);
  mc.run_spmd([&](Node& node) {
    Communicator world = node.world();
    const Coord me = mesh.coord_of(node.id());
    Communicator row = node.group(row_group(mesh, me.row));
    Communicator col = node.group(col_group(mesh, me.col));
    for (int iter = 0; iter < 25; ++iter) {
      // World allreduce.
      std::vector<double> a{static_cast<double>(node.id() + iter)};
      world.all_reduce_sum(std::span<double>(a));
      ASSERT_DOUBLE_EQ(a[0], 28.0 + 8.0 * iter);
      // Row broadcast from a rotating root.
      const int root = iter % row.size();
      std::vector<int> b{row.rank() == root ? iter : -1};
      row.broadcast(std::span<int>(b), root);
      ASSERT_EQ(b[0], iter);
      // Column reduce to a rotating root.
      std::vector<long long> c{1};
      const int croot = iter % col.size();
      col.combine_to_one_bytes(
          std::as_writable_bytes(std::span<long long>(c)),
          sum_op<long long>(), croot);
      if (col.rank() == croot) {
        ASSERT_EQ(c[0], 2);
      }
      // Occasional barrier to shake out stragglers.
      if (iter % 7 == 0) world.barrier();
    }
  });
}

TEST(RuntimeStressTest, RandomizedVectorLengths) {
  Multicomputer mc(Mesh2D(1, 6));
  mc.run_spmd([&](Node& node) {
    Communicator world = node.world();
    Rng rng(1234);  // same stream on every node: same lengths everywhere
    for (int iter = 0; iter < 20; ++iter) {
      const std::size_t elems =
          static_cast<std::size_t>(rng.next_in_range(1, 512));
      std::vector<double> v(elems, 1.0);
      world.all_reduce_sum(std::span<double>(v));
      for (double x : v) ASSERT_DOUBLE_EQ(x, 6.0);
      std::vector<double> w(elems, 0.0);
      if (world.rank() == static_cast<int>(elems) % 6) {
        for (std::size_t i = 0; i < elems; ++i) {
          w[i] = static_cast<double>(i);
        }
      }
      world.broadcast(std::span<double>(w),
                      static_cast<int>(elems) % 6);
      ASSERT_DOUBLE_EQ(w[elems - 1], static_cast<double>(elems - 1));
    }
  });
}

TEST(RuntimeStressTest, SubmeshGroupCollectivesOnThreads) {
  // A 2x4 rectangular submesh inside a 4x4 mesh: the planner's mesh-aligned
  // strategies must execute correctly on the real runtime, not only in the
  // simulator.
  const Mesh2D mesh(4, 4);
  Multicomputer mc(mesh);
  std::vector<int> members;
  for (int r = 1; r < 3; ++r) {
    for (int c = 0; c < 4; ++c) members.push_back(mesh.node_at(r, c));
  }
  const Group sub(members);
  mc.run_spmd([&](Node& node) {
    if (!sub.contains(node.id())) return;
    Communicator comm = node.group(sub);
    // Large enough to trigger mesh-aligned long-vector strategies.
    std::vector<double> v(1 << 12, comm.rank() + 1.0);
    comm.all_reduce_sum(std::span<double>(v));
    for (double x : v) ASSERT_DOUBLE_EQ(x, 36.0);
    std::vector<double> w(1 << 12, 0.0);
    const ElemRange piece = comm.piece_of(w.size(), comm.rank());
    for (std::size_t i = piece.lo; i < piece.hi; ++i) {
      w[i] = 100.0 + comm.rank();
    }
    comm.collect(std::span<double>(w));
    for (int owner = 0; owner < comm.size(); ++owner) {
      const ElemRange op = comm.piece_of(w.size(), owner);
      ASSERT_DOUBLE_EQ(w[op.lo], 100.0 + owner);
    }
  });
}

TEST(RuntimeStressTest, NestedSplitsViaGroups) {
  // Hierarchical teams: world -> halves -> quarters, all alive at once.
  Multicomputer mc(Mesh2D(1, 8));
  mc.run_spmd([&](Node& node) {
    Communicator world = node.world();
    const int half_id = node.id() / 4;
    const int quarter_id = node.id() / 2;
    Communicator half =
        node.group(Group::strided(half_id * 4, 1, 4), 10);
    Communicator quarter =
        node.group(Group::strided(quarter_id * 2, 1, 2), 20);
    std::vector<int> v{1};
    world.all_reduce_sum(std::span<int>(v));
    ASSERT_EQ(v[0], 8);
    v[0] = 1;
    half.all_reduce_sum(std::span<int>(v));
    ASSERT_EQ(v[0], 4);
    v[0] = 1;
    quarter.all_reduce_sum(std::span<int>(v));
    ASSERT_EQ(v[0], 2);
  });
}

}  // namespace
}  // namespace intercom
