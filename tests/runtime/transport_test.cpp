#include "intercom/runtime/transport.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <thread>

#include "intercom/util/error.hpp"

namespace intercom {
namespace {

std::vector<std::byte> bytes_of(const std::string& s) {
  std::vector<std::byte> v(s.size());
  std::memcpy(v.data(), s.data(), s.size());
  return v;
}

std::string string_of(std::span<const std::byte> v) {
  return std::string(reinterpret_cast<const char*>(v.data()), v.size());
}

TEST(TransportTest, SendThenRecvDelivers) {
  Transport t(2);
  const auto msg = bytes_of("hello");
  t.send(0, 1, 7, 3, msg);
  std::vector<std::byte> out(5);
  t.recv(0, 1, 7, 3, out);
  EXPECT_EQ(string_of(out), "hello");
}

TEST(TransportTest, RecvBlocksUntilSend) {
  Transport t(2);
  std::vector<std::byte> out(3);
  std::thread receiver([&] { t.recv(0, 1, 1, 0, out); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  t.send(0, 1, 1, 0, bytes_of("abc"));
  receiver.join();
  EXPECT_EQ(string_of(out), "abc");
}

TEST(TransportTest, MessagesMatchedByTag) {
  Transport t(2);
  t.send(0, 1, 1, 5, bytes_of("five"));
  t.send(0, 1, 1, 4, bytes_of("four"));
  std::vector<std::byte> out(4);
  t.recv(0, 1, 1, 4, out);
  EXPECT_EQ(string_of(out), "four");
  t.recv(0, 1, 1, 5, out);
  EXPECT_EQ(string_of(out), "five");
}

TEST(TransportTest, MessagesMatchedByContext) {
  Transport t(2);
  t.send(0, 1, 100, 0, bytes_of("ctxA"));
  t.send(0, 1, 200, 0, bytes_of("ctxB"));
  std::vector<std::byte> out(4);
  t.recv(0, 1, 200, 0, out);
  EXPECT_EQ(string_of(out), "ctxB");
}

TEST(TransportTest, MessagesMatchedBySender) {
  Transport t(3);
  t.send(0, 2, 1, 0, bytes_of("from0"));
  t.send(1, 2, 1, 0, bytes_of("from1"));
  std::vector<std::byte> out(5);
  t.recv(1, 2, 1, 0, out);
  EXPECT_EQ(string_of(out), "from1");
}

TEST(TransportTest, SameKeyIsFifo) {
  Transport t(2);
  t.send(0, 1, 1, 0, bytes_of("one"));
  t.send(0, 1, 1, 0, bytes_of("two"));
  std::vector<std::byte> out(3);
  t.recv(0, 1, 1, 0, out);
  EXPECT_EQ(string_of(out), "one");
  t.recv(0, 1, 1, 0, out);
  EXPECT_EQ(string_of(out), "two");
}

TEST(TransportTest, LengthMismatchThrows) {
  Transport t(2);
  t.send(0, 1, 1, 0, bytes_of("abc"));
  std::vector<std::byte> out(5);
  EXPECT_THROW(t.recv(0, 1, 1, 0, out), Error);
}

TEST(TransportTest, LengthMismatchThrowsWhenBufferTooSmall) {
  Transport t(2);
  t.send(0, 1, 1, 0, bytes_of("a longer message"));
  std::vector<std::byte> out(4);
  EXPECT_THROW(t.recv(0, 1, 1, 0, out), Error);
}

TEST(TransportTest, ZeroLengthPayloadDelivers) {
  Transport t(2);
  t.send(0, 1, 1, 0, {});
  std::vector<std::byte> empty;
  t.recv(0, 1, 1, 0, empty);  // must match and return, not throw
  // A zero-length message still participates in ordering/matching.
  t.send(0, 1, 1, 0, bytes_of("next"));
  std::vector<std::byte> out(4);
  t.recv(0, 1, 1, 0, out);
  EXPECT_EQ(string_of(out), "next");
}

TEST(TransportTest, RejectsBadNodes) {
  Transport t(2);
  EXPECT_THROW(t.send(0, 2, 1, 0, bytes_of("x")), Error);
  EXPECT_THROW(t.send(0, 0, 1, 0, bytes_of("x")), Error);
  EXPECT_THROW(Transport(0), Error);
}

TEST(TransportTest, RecvRejectsOutOfRangeNodes) {
  Transport t(2);
  std::vector<std::byte> out(1);
  EXPECT_THROW(t.recv(2, 1, 1, 0, out), Error);
  EXPECT_THROW(t.recv(-1, 1, 1, 0, out), Error);
  EXPECT_THROW(t.recv(0, 2, 1, 0, out), Error);
  EXPECT_THROW(t.recv(0, -3, 1, 0, out), Error);
  EXPECT_THROW(t.send(-1, 1, 1, 0, bytes_of("x")), Error);
}

TEST(TransportTest, LateArrivalWithinTimeoutWindowSucceeds) {
  Transport t(2);
  t.set_recv_timeout_ms(2000);
  std::thread sender([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    t.send(0, 1, 1, 0, bytes_of("late"));
  });
  std::vector<std::byte> out(4);
  t.recv(0, 1, 1, 0, out);  // blocks past the arrival, not until timeout
  EXPECT_EQ(string_of(out), "late");
  sender.join();
}

TEST(TransportTest, TimeoutThrowsTypedErrorAndMessageStaysDeliverable) {
  Transport t(2);
  t.set_recv_timeout_ms(30);
  std::vector<std::byte> out(5);
  EXPECT_THROW(t.recv(0, 1, 1, 0, out), TimeoutError);
  // The watchdog fired, but the transport is not poisoned: a message that
  // arrives after the timeout is still delivered to a fresh recv.
  t.send(0, 1, 1, 0, bytes_of("after"));
  t.recv(0, 1, 1, 0, out);
  EXPECT_EQ(string_of(out), "after");
}

TEST(TransportTest, TimeoutDiagnosticNamesContextAndPendingKeys) {
  Transport t(3);
  t.set_recv_timeout_ms(30);
  // Two unrelated messages are pending at node 1 while it waits on the
  // wrong key — the classic mismatched-collective symptom.
  t.send(0, 1, 42, 7, bytes_of("wrong-tag"));
  t.send(2, 1, 99, 0, bytes_of("wrong-ctx"));
  std::vector<std::byte> out(9);
  try {
    t.recv(0, 1, 42, 9, out);
    FAIL() << "expected TimeoutError";
  } catch (const TimeoutError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("ctx 42"), std::string::npos) << what;
    EXPECT_NE(what.find("tag 9"), std::string::npos) << what;
    EXPECT_NE(what.find("pending"), std::string::npos) << what;
    EXPECT_NE(what.find("tag=7"), std::string::npos) << what;
    EXPECT_NE(what.find("ctx=99"), std::string::npos) << what;
  }
}

TEST(TransportTest, ManyContextInterleaving) {
  Transport t(2);
  const int kContexts = 32;
  const int kTags = 4;
  // Send every (ctx, tag) pair in one order...
  for (int c = 0; c < kContexts; ++c) {
    for (int tag = 0; tag < kTags; ++tag) {
      const int value = c * kTags + tag;
      std::vector<std::byte> payload(sizeof(int));
      std::memcpy(payload.data(), &value, sizeof(int));
      t.send(0, 1, static_cast<std::uint64_t>(c), tag, payload);
    }
  }
  // ...and receive in a different (reversed, tag-major) order.
  for (int tag = kTags - 1; tag >= 0; --tag) {
    for (int c = kContexts - 1; c >= 0; --c) {
      std::vector<std::byte> out(sizeof(int));
      t.recv(0, 1, static_cast<std::uint64_t>(c), tag, out);
      int value = -1;
      std::memcpy(&value, out.data(), sizeof(int));
      EXPECT_EQ(value, c * kTags + tag);
    }
  }
}

TEST(TransportTest, ManyThreadsExchange) {
  const int p = 8;
  Transport t(p);
  std::vector<std::thread> threads;
  std::vector<int> received(static_cast<std::size_t>(p), -1);
  for (int i = 0; i < p; ++i) {
    threads.emplace_back([&, i] {
      const int next = (i + 1) % p;
      const int prev = (i + p - 1) % p;
      std::vector<std::byte> payload(sizeof(int));
      std::memcpy(payload.data(), &i, sizeof(int));
      t.send(i, next, 9, 0, payload);
      std::vector<std::byte> in(sizeof(int));
      t.recv(prev, i, 9, 0, in);
      std::memcpy(&received[static_cast<std::size_t>(i)], in.data(),
                  sizeof(int));
    });
  }
  for (auto& th : threads) th.join();
  for (int i = 0; i < p; ++i) {
    EXPECT_EQ(received[static_cast<std::size_t>(i)], (i + p - 1) % p);
  }
}

// Regression: reset() must zero the reliability counters along with the
// sequence bookkeeping, or stats from a failed run bleed into the next one.
TEST(TransportTest, ResetZeroesReliabilityStats) {
  Transport t(2);
  t.set_reliable(true);
  const auto msg = bytes_of("ping");
  std::vector<std::byte> out(4);
  for (int i = 0; i < 3; ++i) {
    t.send(0, 1, 7, 0, msg);
    t.recv(0, 1, 7, 0, out);
  }
  ASSERT_GT(t.reliability_stats().frames_sent, 0u);

  t.reset();
  const auto stats = t.reliability_stats();
  EXPECT_EQ(stats.frames_sent, 0u);
  EXPECT_EQ(stats.retransmits, 0u);
  EXPECT_EQ(stats.corrupt_discards, 0u);
  EXPECT_EQ(stats.duplicate_discards, 0u);

  // Sequence numbering also restarts: the transport is as-new.
  t.send(0, 1, 7, 0, msg);
  t.recv(0, 1, 7, 0, out);
  EXPECT_EQ(t.reliability_stats().frames_sent, 1u);
  EXPECT_EQ(string_of(out), "ping");
}

}  // namespace
}  // namespace intercom
