// The fabric seam itself: backend registry resolution, SimFabric's
// link-contention accounting and virtual clock, reset() semantics across
// every layer (fabric state, reliability cursors, sender logs), and the
// teardown/reuse regression — an aborted async collective must leave the
// machine fully reusable after reset.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstring>
#include <memory>
#include <numeric>
#include <thread>
#include <vector>

#include "intercom/runtime/communicator.hpp"
#include "intercom/runtime/fabric_registry.hpp"
#include "intercom/runtime/fault.hpp"
#include "intercom/runtime/multicomputer.hpp"
#include "intercom/runtime/sim_fabric.hpp"
#include "intercom/runtime/transport.hpp"
#include "intercom/util/error.hpp"
#include "fabric_fixture.hpp"

namespace intercom {
namespace {

// ---------------------------------------------------------------------------
// Registry.

TEST(FabricRegistryTest, BuiltinsAreRegistered) {
  const auto names = registered_fabrics();
  EXPECT_NE(std::find(names.begin(), names.end(), "inproc"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "sim"), names.end());
}

TEST(FabricRegistryTest, MakeFabricResolvesByName) {
  const Mesh2D mesh(2, 2);
  auto inproc = make_fabric(FabricSpec{}, mesh);
  ASSERT_NE(inproc, nullptr);
  EXPECT_EQ(inproc->name(), "inproc");
  EXPECT_EQ(inproc->node_count(), 4);

  FabricSpec sim_spec;
  sim_spec.name = "sim";
  sim_spec.sim.time_scale = 0.0;
  auto sim = make_fabric(sim_spec, mesh);
  ASSERT_NE(sim, nullptr);
  EXPECT_EQ(sim->name(), "sim");
  EXPECT_EQ(sim->node_count(), 4);
}

TEST(FabricRegistryTest, UnknownBackendThrowsWithListing) {
  FabricSpec spec;
  spec.name = "carrier-pigeon";
  try {
    make_fabric(spec, Mesh2D(1, 2));
    FAIL() << "expected Error for unknown backend";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("carrier-pigeon"), std::string::npos);
    EXPECT_NE(what.find("inproc"), std::string::npos);
    EXPECT_NE(what.find("sim"), std::string::npos);
  }
}

TEST(FabricRegistryTest, CustomBackendIsConstructible) {
  // The refactor's seam: a new delivery backend slots in without touching
  // Transport or Multicomputer.  A subclass of InProcFabric that counts
  // crossings stands in for a real alternative wire.
  struct CountingFabric final : InProcFabric {
    explicit CountingFabric(int n) : InProcFabric(n) {}
    std::string_view name() const override { return "counting"; }
    std::atomic<std::uint64_t> crossings{0};

   protected:
    void carry(int, int, std::size_t) override {
      crossings.fetch_add(1, std::memory_order_relaxed);
    }
  };
  register_fabric("counting", [](const Mesh2D& mesh, const FabricSpec&) {
    return std::make_unique<CountingFabric>(mesh.node_count());
  });

  FabricSpec spec;
  spec.name = "counting";
  Multicomputer mc(Mesh2D(1, 2), MachineParams::paragon(), spec);
  EXPECT_EQ(mc.fabric_name(), "counting");
  mc.run_spmd([](Node& node) {
    std::vector<int> data(8, node.id() == 0 ? 3 : 0);
    node.world().broadcast(std::span<int>(data), 0);
    ASSERT_EQ(data[0], 3);
  });
  auto& counting = static_cast<CountingFabric&>(mc.transport().fabric());
  EXPECT_GT(counting.crossings.load(), 0u);
}

TEST(FabricRegistryTest, MulticomputerReportsItsBackend) {
  Multicomputer ideal(Mesh2D(1, 2));
  EXPECT_EQ(ideal.fabric_name(), "inproc");
  Multicomputer sim(Mesh2D(1, 2), MachineParams::paragon(),
                    test_fabric_spec("sim"));
  EXPECT_EQ(sim.fabric_name(), "sim");
  EXPECT_EQ(sim.tracer().fabric(), "sim");
}

// ---------------------------------------------------------------------------
// SimFabric accounting.

SimFabric& sim_of(Multicomputer& mc) {
  return static_cast<SimFabric&>(mc.transport().fabric());
}

TEST(SimFabricTest, CarriesAreAccountedOnRouteLinks) {
  Multicomputer mc(Mesh2D(1, 4), MachineParams::paragon(),
                   test_fabric_spec("sim"));
  mc.run_spmd([](Node& node) {
    std::vector<double> data(256, node.id() == 0 ? 1.5 : 0.0);
    node.world().broadcast(std::span<double>(data), 0);
    ASSERT_EQ(data[0], 1.5);
  });
  const SimFabric::Stats stats = sim_of(mc).stats();
  EXPECT_GT(stats.transfers, 0u);
  EXPECT_GT(stats.bytes, 0u);
  EXPECT_GT(stats.virtual_ns, 0u);  // the model charges alpha even unpaced
  EXPECT_EQ(stats.link_transfers.size(),
            static_cast<std::size_t>(mc.mesh().directed_link_count()));
  const std::uint64_t on_links = std::accumulate(
      stats.link_transfers.begin(), stats.link_transfers.end(),
      std::uint64_t{0});
  EXPECT_GT(on_links, 0u) << "no crossing occupied any directed link";
}

TEST(SimFabricTest, ConflictingFlowsAreDetected) {
  // All-to-one on a 1 x 8 array: every flow from the right half crosses the
  // center links simultaneously, so co-occupancy is guaranteed under the
  // store-and-forward eager path.
  Multicomputer mc(Mesh2D(1, 8), MachineParams::paragon(),
                   test_fabric_spec("sim"));
  mc.run_spmd([](Node& node) {
    std::vector<double> data(512, static_cast<double>(node.id()));
    node.world().reduce_sum(std::span<double>(data), 0);
  });
  const SimFabric::Stats stats = sim_of(mc).stats();
  EXPECT_GT(stats.transfers, 0u);
  EXPECT_GE(stats.peak_link_load, 1);
  EXPECT_EQ(stats.link_conflicts.size(), stats.link_transfers.size());
}

TEST(SimFabricTest, VirtualClockMatchesTheMachineModel) {
  // One uncontended crossing: virtual time must equal
  // alpha(n) + tau*hops + n*beta(n) exactly (single chunk, sharing = 1).
  const Mesh2D mesh(1, 2);
  SimFabricConfig config;
  config.machine = MachineParams::unit();
  config.time_scale = 0.0;
  config.chunks = 1;
  Transport t(2, std::make_unique<SimFabric>(mesh, config));
  auto& fabric = static_cast<SimFabric&>(t.fabric());

  const std::size_t n = 1024;
  std::vector<std::byte> payload(n, std::byte{0x42});
  t.send(0, 1, 1, 0, payload);
  std::vector<std::byte> out(n);
  t.recv(0, 1, 1, 0, out);
  EXPECT_EQ(out, payload);

  const MachineParams& m = config.machine;
  const double expected_s = m.alpha_for(n) + m.tau_per_hop +
                            static_cast<double>(n) * m.beta_for(n);
  const SimFabric::Stats stats = fabric.stats();
  EXPECT_EQ(stats.transfers, 1u);
  EXPECT_EQ(stats.bytes, n);
  EXPECT_NEAR(static_cast<double>(stats.virtual_ns) * 1e-9, expected_s,
              expected_s * 1e-6);
}

TEST(SimFabricTest, TimeScalePacesWallClock) {
  // time_scale converts modeled seconds to wall sleeps; a transfer modeled
  // at ~10 ms must take at least that long at scale 1, and be near-instant
  // at scale 0.
  const Mesh2D mesh(1, 2);
  MachineParams slow = MachineParams::unit();
  slow.alpha = 0.010;  // 10 ms startup, nothing else
  slow.beta = 0.0;
  slow.tau_per_hop = 0.0;

  for (const double scale : {0.0, 1.0}) {
    SimFabricConfig config;
    config.machine = slow;
    config.time_scale = scale;
    Transport t(2, std::make_unique<SimFabric>(mesh, config));
    std::vector<std::byte> payload(16, std::byte{1});
    std::vector<std::byte> out(16);
    const auto start = std::chrono::steady_clock::now();
    t.send(0, 1, 1, 0, payload);
    t.recv(0, 1, 1, 0, out);
    const auto elapsed = std::chrono::steady_clock::now() - start;
    if (scale > 0.0) {
      EXPECT_GE(elapsed, std::chrono::milliseconds(9)) << "scale " << scale;
    } else {
      EXPECT_LT(elapsed, std::chrono::milliseconds(9)) << "scale " << scale;
    }
  }
}

TEST(SimFabricTest, ResetClearsSimState) {
  Multicomputer mc(Mesh2D(1, 4), MachineParams::paragon(),
                   test_fabric_spec("sim"));
  mc.run_spmd([](Node& node) {
    std::vector<int> data(64, node.id());
    node.world().all_reduce_sum(std::span<int>(data));
  });
  ASSERT_GT(sim_of(mc).stats().transfers, 0u);
  mc.transport().reset();
  const SimFabric::Stats stats = sim_of(mc).stats();
  EXPECT_EQ(stats.transfers, 0u);
  EXPECT_EQ(stats.bytes, 0u);
  EXPECT_EQ(stats.virtual_ns, 0u);
  EXPECT_EQ(stats.peak_link_load, 0);
  EXPECT_EQ(std::accumulate(stats.link_transfers.begin(),
                            stats.link_transfers.end(), std::uint64_t{0}),
            0u);
}

// ---------------------------------------------------------------------------
// Engine selection, topology overrides, and configuration validation.

TEST(SimFabricTest, FluidEngineRemainsSelectable) {
  // The historical fluid model stays available for regression comparison.
  SimFabricConfig config;
  config.machine = MachineParams::unit();
  config.engine = SimEngine::kFluid;
  config.time_scale = 0.0;
  config.chunks = 1;
  Transport t(2, std::make_unique<SimFabric>(Mesh2D(1, 2), config));
  auto& fabric = static_cast<SimFabric&>(t.fabric());

  const std::size_t n = 1024;
  std::vector<std::byte> payload(n, std::byte{0x42});
  t.send(0, 1, 1, 0, payload);
  std::vector<std::byte> out(n);
  t.recv(0, 1, 1, 0, out);
  const MachineParams& m = config.machine;
  const double expected_s = m.alpha_for(n) + m.tau_per_hop +
                            static_cast<double>(n) * m.beta_for(n);
  const SimFabric::Stats stats = fabric.stats();
  EXPECT_NEAR(static_cast<double>(stats.virtual_ns) * 1e-9, expected_s,
              expected_s * 1e-6);
  EXPECT_EQ(stats.virtual_clock_s, 0.0);  // fluid mode keeps no event clock
}

TEST(SimFabricTest, EventEngineVirtualClockIsDeterministic) {
  // The event engine's headline property: a conflict-free workload's
  // virtual-clock makespan is a pure function of the traffic, bit-identical
  // across runs and thread schedules.  The guarantee is scoped to
  // conflict-free traffic (docs/simulation.md: contention between racing
  // crossings resolves in arrival order), so the payload is kept short
  // enough that the planner picks the pure MST broadcast, whose stages use
  // disjoint channels on a line — and the premise is asserted, not assumed.
  const auto run_once = [] {
    Multicomputer mc(Mesh2D(1, 8), MachineParams::paragon(),
                     test_fabric_spec("sim"));
    mc.run_spmd([](Node& node) {
      std::vector<double> data(64, node.id() == 0 ? 1.0 : 0.0);
      node.world().broadcast(std::span<double>(data), 0);
    });
    return sim_of(mc).stats();
  };
  const SimFabric::Stats a = run_once();
  const SimFabric::Stats b = run_once();
  const SimFabric::Stats c = run_once();
  EXPECT_EQ(a.conflicted_transfers, 0u);  // the conflict-free premise
  EXPECT_GT(a.virtual_clock_s, 0.0);
  EXPECT_EQ(a.virtual_clock_s, b.virtual_clock_s);  // bitwise
  EXPECT_EQ(b.virtual_clock_s, c.virtual_clock_s);
  EXPECT_EQ(a.virtual_ns, b.virtual_ns);
  EXPECT_EQ(b.virtual_ns, c.virtual_ns);
}

TEST(SimFabricTest, TopologyOverrideRunsCollectivesOnEveryFamily) {
  // A 4-node machine exercised over every topology family the sim fabric
  // can model; collectives must stay correct (the topology only changes the
  // timing model, never delivery semantics).
  const std::vector<TopologySpec> shapes = {
      TopologySpec::torus(2, 2),
      TopologySpec::hypercube(2),
      TopologySpec::fat_tree(2, 2),
      TopologySpec::dragonfly(1, 2, 1),
  };
  for (const TopologySpec& shape : shapes) {
    FabricSpec spec = test_fabric_spec("sim");
    spec.sim.topology = shape;
    Multicomputer mc(Mesh2D(2, 2), MachineParams::paragon(), spec);
    mc.run_spmd([](Node& node) {
      std::vector<int> data(64, node.id());
      node.world().all_reduce_sum(std::span<int>(data));
      for (int v : data) ASSERT_EQ(v, 0 + 1 + 2 + 3);
    });
    const SimFabric& fabric = sim_of(mc);
    EXPECT_GT(fabric.stats().transfers, 0u);
    EXPECT_EQ(mc.tracer().topology(), fabric.topology().label());
  }
}

TEST(SimFabricTest, TopologyNodeCountMismatchIsAConfigError) {
  FabricSpec spec = test_fabric_spec("sim");
  spec.sim.topology = TopologySpec::torus(3, 3);  // 9 nodes vs the machine's 4
  EXPECT_THROW(SimFabric(Mesh2D(2, 2), spec.sim), ConfigError);
}

TEST(SimFabricTest, RejectsOutOfDomainConfig) {
  const auto reject = [](auto&& tweak) {
    SimFabricConfig config;
    config.time_scale = 0.0;
    tweak(config);
    EXPECT_THROW(SimFabric(Mesh2D(1, 2), config), ConfigError);
  };
  reject([](SimFabricConfig& c) { c.chunks = 0; });
  reject([](SimFabricConfig& c) { c.chunks = -3; });
  reject([](SimFabricConfig& c) { c.min_chunk_bytes = 0; });
  reject([](SimFabricConfig& c) { c.time_scale = -0.5; });
  reject([](SimFabricConfig& c) { c.packet_bytes = 0; });
}

TEST(SimFabricTest, TracerCarriesTheTopologyLabel) {
  Multicomputer mc(Mesh2D(2, 2), MachineParams::paragon(),
                   test_fabric_spec("sim"));
  EXPECT_EQ(mc.tracer().topology(), "mesh2x2");
  Multicomputer ideal(Mesh2D(2, 2));
  EXPECT_EQ(ideal.tracer().topology(), "");  // inproc models no interconnect
}

// ---------------------------------------------------------------------------
// reset()/teardown audit, on both fabrics.

class FabricResetTest : public FabricParamTest {};

// The PR's reset regression: issue an async collective, abort the machine
// mid-flight, reset, and reuse the SAME pattern of communicators.  Every
// layer must come back clean — fabric channels (pending slabs, limbo,
// posted tickets), reliability cursors (next-expected sequence numbers),
// sender retransmit logs, and the abort flag.
TEST_P(FabricResetTest, AbortedAsyncCollectiveThenResetThenReuse) {
  Multicomputer& mc = machine(Mesh2D(1, 4));
  const int p = mc.node_count();

  for (int round = 0; round < 3; ++round) {
    // Round A: an async all-reduce is in flight when one node aborts.
    EXPECT_THROW(
        mc.run_spmd([&](Node& node) {
          Communicator world = node.world();
          std::vector<std::int64_t> data(4096, node.id());
          Request r = world.iall_reduce_sum(std::span<std::int64_t>(data));
          if (node.id() == 1) throw Error("round casualty");
          r.wait();
        }),
        Error);
    // run_spmd already reset the machine; it must be fully reusable with
    // the same communicator pattern and fresh reliability state.
    EXPECT_FALSE(mc.transport().aborted());
    const std::int64_t rank_sum =
        static_cast<std::int64_t>(p) * static_cast<std::int64_t>(p - 1) / 2;
    mc.run_spmd([&](Node& node) {
      Communicator world = node.world();
      std::vector<std::int64_t> data(4096, node.id());
      Request r = world.iall_reduce_sum(std::span<std::int64_t>(data));
      r.wait();
      for (std::int64_t v : data) ASSERT_EQ(v, rank_sum);
    });
  }
}

// Explicit-transport variant: reset() must drop poisoned state, pending
// frames, and reliability sequence cursors so a fresh exchange starts at
// sequence zero on a clean wire.
TEST_P(FabricResetTest, ResetRestoresReliableWireAfterAbort) {
  Transport& t = transport(2);
  t.set_reliable(true);
  // A delivered-but-unreceived message strands state in the fabric channel
  // and the sender's unacked log.
  std::vector<std::byte> payload(32, std::byte{0x7});
  t.send(0, 1, 9, 0, payload);
  t.abort("strand it");
  EXPECT_TRUE(t.aborted());
  EXPECT_THROW(t.send(0, 1, 9, 0, payload), AbortedError);

  t.reset();
  EXPECT_FALSE(t.aborted());
  const auto stats = t.reliability_stats();
  EXPECT_EQ(stats.frames_sent, 0u);

  // The stranded frame is gone; a fresh exchange restarts at sequence 0 and
  // completes normally.
  t.send(0, 1, 9, 0, payload);
  std::vector<std::byte> out(32);
  t.recv(0, 1, 9, 0, out);
  EXPECT_EQ(out, payload);
}

// A receive posted and timed out must not leak its ticket: the next recv on
// the same key matches fresh traffic, on either fabric.
TEST_P(FabricResetTest, TimedOutRecvLeavesNoStaleTicket) {
  Transport& t = transport(2);
  t.set_recv_timeout_ms(30);
  std::vector<std::byte> out(4);
  EXPECT_THROW(t.recv(0, 1, 3, 0, out), TimeoutError);
  t.set_recv_timeout_ms(5000);
  std::vector<std::byte> payload(4, std::byte{0xA});
  t.send(0, 1, 3, 0, payload);
  t.recv(0, 1, 3, 0, out);
  EXPECT_EQ(out, payload);
}

INTERCOM_INSTANTIATE_FABRIC_SUITE(FabricResetTest);

}  // namespace
}  // namespace intercom
