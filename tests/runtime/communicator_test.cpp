// SPMD communicator tests on the threaded multicomputer: every collective's
// Table 1 contract, on real threads with real data.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>

#include "intercom/runtime/communicator.hpp"
#include "intercom/util/error.hpp"

namespace intercom {
namespace {

TEST(MulticomputerTest, SpmdRunsEveryNode) {
  Multicomputer mc(Mesh2D(2, 3));
  std::atomic<int> visits{0};
  std::atomic<int> id_sum{0};
  mc.run_spmd([&](Node& node) {
    visits.fetch_add(1);
    id_sum.fetch_add(node.id());
  });
  EXPECT_EQ(visits.load(), 6);
  EXPECT_EQ(id_sum.load(), 15);
}

TEST(MulticomputerTest, ExceptionsPropagate) {
  Multicomputer mc(Mesh2D(1, 2));
  EXPECT_THROW(mc.run_spmd([&](Node& node) {
    // Both nodes throw, so no collective is left half-entered.
    if (node.id() >= 0) throw Error("boom");
  }),
               Error);
}

TEST(CommunicatorTest, BroadcastWorld) {
  Multicomputer mc(Mesh2D(1, 6));
  const std::size_t elems = 17;
  mc.run_spmd([&](Node& node) {
    Communicator world = node.world();
    std::vector<double> data(elems, -1.0);
    if (world.rank() == 2) {
      for (std::size_t i = 0; i < elems; ++i) data[i] = 3.0 * i;
    }
    world.broadcast(std::span<double>(data), 2);
    for (std::size_t i = 0; i < elems; ++i) {
      ASSERT_DOUBLE_EQ(data[i], 3.0 * i) << "node " << node.id();
    }
  });
}

TEST(CommunicatorTest, AllReduceSum) {
  Multicomputer mc(Mesh2D(2, 4));
  const std::size_t elems = 9;
  mc.run_spmd([&](Node& node) {
    Communicator world = node.world();
    std::vector<double> data(elems);
    for (std::size_t i = 0; i < elems; ++i) {
      data[i] = node.id() + static_cast<double>(i) * 0.5;
    }
    world.all_reduce_sum(std::span<double>(data));
    const int p = world.size();
    for (std::size_t i = 0; i < elems; ++i) {
      ASSERT_DOUBLE_EQ(data[i], p * (p - 1) / 2.0 + p * i * 0.5);
    }
  });
}

TEST(CommunicatorTest, ReduceToRoot) {
  Multicomputer mc(Mesh2D(1, 5));
  mc.run_spmd([&](Node& node) {
    Communicator world = node.world();
    std::vector<long long> data{node.id() + 1ll, 100ll};
    world.combine_to_one_bytes(std::as_writable_bytes(std::span<long long>(data)),
                               sum_op<long long>(), 3);
    if (world.rank() == 3) {
      EXPECT_EQ(data[0], 15);
      EXPECT_EQ(data[1], 500);
    }
  });
}

TEST(CommunicatorTest, CollectAssemblesPieces) {
  Multicomputer mc(Mesh2D(1, 7));
  const std::size_t elems = 23;
  mc.run_spmd([&](Node& node) {
    Communicator world = node.world();
    std::vector<double> data(elems, 0.0);
    const ElemRange piece = world.piece_of(elems, world.rank());
    for (std::size_t i = piece.lo; i < piece.hi; ++i) {
      data[i] = 100.0 * world.rank() + static_cast<double>(i);
    }
    world.collect(std::span<double>(data));
    for (int owner = 0; owner < world.size(); ++owner) {
      const ElemRange op = world.piece_of(elems, owner);
      for (std::size_t i = op.lo; i < op.hi; ++i) {
        ASSERT_DOUBLE_EQ(data[i], 100.0 * owner + static_cast<double>(i));
      }
    }
  });
}

TEST(CommunicatorTest, ScatterGatherRoundTrip) {
  Multicomputer mc(Mesh2D(1, 4));
  const std::size_t elems = 12;
  mc.run_spmd([&](Node& node) {
    Communicator world = node.world();
    std::vector<double> data(elems, 0.0);
    if (world.rank() == 0) {
      for (std::size_t i = 0; i < elems; ++i) data[i] = i + 0.5;
    }
    world.scatter(std::span<double>(data), 0);
    const ElemRange piece = world.piece_of(elems, world.rank());
    for (std::size_t i = piece.lo; i < piece.hi; ++i) {
      ASSERT_DOUBLE_EQ(data[i], i + 0.5);
      data[i] += 1000.0;  // transform in place
    }
    world.gather(std::span<double>(data), 0);
    if (world.rank() == 0) {
      for (std::size_t i = 0; i < elems; ++i) {
        ASSERT_DOUBLE_EQ(data[i], i + 0.5 + 1000.0);
      }
    }
  });
}

TEST(CommunicatorTest, ReduceScatterLeavesCombinedPieces) {
  Multicomputer mc(Mesh2D(1, 6));
  const std::size_t elems = 18;
  mc.run_spmd([&](Node& node) {
    Communicator world = node.world();
    std::vector<double> data(elems);
    for (std::size_t i = 0; i < elems; ++i) data[i] = node.id() + 1.0;
    world.reduce_scatter_sum(std::span<double>(data));
    const int p = world.size();
    const ElemRange piece = world.piece_of(elems, world.rank());
    for (std::size_t i = piece.lo; i < piece.hi; ++i) {
      ASSERT_DOUBLE_EQ(data[i], p * (p + 1) / 2.0);
    }
  });
}

TEST(CommunicatorTest, SequencedCollectivesDoNotCrosstalk) {
  // Two back-to-back broadcasts with different roots: sequence numbers keep
  // their messages apart.
  Multicomputer mc(Mesh2D(1, 4));
  mc.run_spmd([&](Node& node) {
    Communicator world = node.world();
    std::vector<int> a{node.id() == 0 ? 111 : 0};
    std::vector<int> b{node.id() == 3 ? 222 : 0};
    world.broadcast(std::span<int>(a), 0);
    world.broadcast(std::span<int>(b), 3);
    ASSERT_EQ(a[0], 111);
    ASSERT_EQ(b[0], 222);
  });
}

TEST(CommunicatorTest, BarrierCompletes) {
  Multicomputer mc(Mesh2D(1, 5));
  mc.run_spmd([&](Node& node) {
    Communicator world = node.world();
    for (int i = 0; i < 3; ++i) world.barrier();
    (void)node;
  });
}

TEST(CommunicatorTest, MaxAndMinReductions) {
  Multicomputer mc(Mesh2D(1, 4));
  mc.run_spmd([&](Node& node) {
    Communicator world = node.world();
    std::vector<double> hi{static_cast<double>(node.id())};
    std::vector<double> lo{static_cast<double>(node.id())};
    world.combine_to_all_bytes(std::as_writable_bytes(std::span<double>(hi)),
                               max_op<double>());
    world.combine_to_all_bytes(std::as_writable_bytes(std::span<double>(lo)),
                               min_op<double>());
    ASSERT_DOUBLE_EQ(hi[0], 3.0);
    ASSERT_DOUBLE_EQ(lo[0], 0.0);
  });
}

TEST(CommunicatorTest, BufferMustBeElementMultiple) {
  Multicomputer mc(Mesh2D(1, 2));
  EXPECT_THROW(mc.run_spmd([&](Node& node) {
    Communicator world = node.world();
    std::vector<std::byte> odd(7);
    world.broadcast_bytes(odd, 2, 0);
  }),
               Error);
}

}  // namespace
}  // namespace intercom
