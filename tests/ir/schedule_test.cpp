#include "intercom/ir/schedule.hpp"

#include <gtest/gtest.h>

#include "intercom/util/error.hpp"

namespace intercom {
namespace {

TEST(OpTest, Factories) {
  const BufSlice s{kUserBuf, 8, 16};
  const Op send = Op::send(3, s, 7);
  EXPECT_EQ(send.kind, OpKind::kSend);
  EXPECT_EQ(send.peer, 3);
  EXPECT_EQ(send.tag, 7);
  EXPECT_TRUE(send.has_send());
  EXPECT_FALSE(send.has_recv());

  const Op recv = Op::recv(2, s, 9);
  EXPECT_EQ(recv.kind, OpKind::kRecv);
  EXPECT_TRUE(recv.has_recv());
  EXPECT_EQ(recv.recv_peer(), 2);
  EXPECT_EQ(recv.recv_tag(), 9);

  const Op sr = Op::sendrecv(1, s, 4, 2, s, 5);
  EXPECT_TRUE(sr.has_send());
  EXPECT_TRUE(sr.has_recv());
  EXPECT_EQ(sr.peer, 1);
  EXPECT_EQ(sr.tag, 4);
  EXPECT_EQ(sr.recv_peer(), 2);
  EXPECT_EQ(sr.recv_tag(), 5);
}

TEST(OpTest, CombineRequiresEqualLengths) {
  EXPECT_THROW(
      Op::combine(BufSlice{0, 0, 8}, BufSlice{0, 0, 4}), Error);
  EXPECT_THROW(Op::copy(BufSlice{0, 0, 8}, BufSlice{0, 8, 12}), Error);
}

TEST(ScheduleTest, ProgramCreationAndLookup) {
  Schedule s;
  s.program(4).ops.push_back(Op::copy(BufSlice{0, 0, 0}, BufSlice{0, 0, 0}));
  EXPECT_NE(s.find_program(4), nullptr);
  EXPECT_EQ(s.find_program(5), nullptr);
  EXPECT_EQ(s.find_program(4)->node, 4);
  EXPECT_EQ(s.programs().size(), 1u);
}

TEST(ScheduleTest, ReserveSliceGrowsBufferTable) {
  Schedule s;
  s.reserve_slice(0, BufSlice{kScratchBuf, 100, 50});
  const NodeProgram* prog = s.find_program(0);
  ASSERT_NE(prog, nullptr);
  ASSERT_EQ(prog->buffer_bytes.size(), 2u);
  EXPECT_EQ(prog->buffer_bytes[kScratchBuf], 150u);
  // Smaller reservations never shrink.
  s.reserve_slice(0, BufSlice{kScratchBuf, 0, 10});
  EXPECT_EQ(s.find_program(0)->buffer_bytes[kScratchBuf], 150u);
}

TEST(ScheduleTest, AddTransferCreatesMatchedPair) {
  Schedule s;
  const BufSlice slice{kUserBuf, 0, 64};
  s.add_transfer(1, 2, slice, slice);
  const NodeProgram* sender = s.find_program(1);
  const NodeProgram* receiver = s.find_program(2);
  ASSERT_EQ(sender->ops.size(), 1u);
  ASSERT_EQ(receiver->ops.size(), 1u);
  EXPECT_EQ(sender->ops[0].kind, OpKind::kSend);
  EXPECT_EQ(receiver->ops[0].kind, OpKind::kRecv);
  EXPECT_EQ(sender->ops[0].tag, receiver->ops[0].tag);
  EXPECT_EQ(s.total_sends(), 1u);
  EXPECT_EQ(s.total_bytes_sent(), 64u);
}

TEST(ScheduleTest, AddTransferRejectsSelfAndMismatch) {
  Schedule s;
  const BufSlice a{kUserBuf, 0, 8};
  const BufSlice b{kUserBuf, 0, 16};
  EXPECT_THROW(s.add_transfer(1, 1, a, a), Error);
  EXPECT_THROW(s.add_transfer(1, 2, a, b), Error);
}

TEST(ScheduleTest, FreshTagsAreUnique) {
  Schedule s;
  EXPECT_EQ(s.fresh_tag(), 0);
  EXPECT_EQ(s.fresh_tag(), 1);
  EXPECT_EQ(s.fresh_tag(), 2);
}

TEST(ScheduleTest, TotalsCountSendRecvHalves) {
  Schedule s;
  const BufSlice slice{kUserBuf, 0, 10};
  s.program(0).ops.push_back(Op::sendrecv(1, slice, 0, 1, slice, 1));
  EXPECT_EQ(s.total_sends(), 1u);
  EXPECT_EQ(s.total_bytes_sent(), 10u);
}

TEST(ScheduleTest, ToStringMentionsOps) {
  Schedule s;
  s.set_algorithm("test-alg");
  const BufSlice slice{kUserBuf, 0, 4};
  s.add_transfer(0, 1, slice, slice);
  const std::string text = to_string(s);
  EXPECT_NE(text.find("test-alg"), std::string::npos);
  EXPECT_NE(text.find("send"), std::string::npos);
  EXPECT_NE(text.find("recv"), std::string::npos);
}

TEST(ScheduleTest, MergeDisjointGroups) {
  // Two concurrent group collectives on disjoint node sets merge into one
  // schedule that validates and preserves both traffic patterns.
  Schedule a;
  a.set_algorithm("left");
  a.add_transfer(0, 1, BufSlice{kUserBuf, 0, 8}, BufSlice{kUserBuf, 0, 8});
  Schedule b;
  b.set_algorithm("right");
  b.add_transfer(2, 3, BufSlice{kUserBuf, 0, 16}, BufSlice{kUserBuf, 0, 16});
  std::vector<Schedule> parts;
  parts.push_back(std::move(a));
  parts.push_back(std::move(b));
  const Schedule merged = merge_schedules(std::move(parts));
  EXPECT_EQ(merged.total_sends(), 2u);
  EXPECT_EQ(merged.total_bytes_sent(), 24u);
  EXPECT_EQ(merged.algorithm(), "left + right");
  EXPECT_NE(merged.find_program(0), nullptr);
  EXPECT_NE(merged.find_program(3), nullptr);
}

TEST(ScheduleTest, MergeSequentialPhasesOnSameNodes) {
  // Back-to-back phases on the same pair: per-pair FIFO ordering keeps the
  // repeated tags unambiguous.
  Schedule a;
  a.add_transfer(0, 1, BufSlice{kUserBuf, 0, 8}, BufSlice{kUserBuf, 0, 8});
  Schedule b;
  b.add_transfer(0, 1, BufSlice{kUserBuf, 8, 8}, BufSlice{kUserBuf, 8, 8});
  std::vector<Schedule> parts;
  parts.push_back(std::move(a));
  parts.push_back(std::move(b));
  const Schedule merged = merge_schedules(std::move(parts));
  ASSERT_NE(merged.find_program(0), nullptr);
  EXPECT_EQ(merged.find_program(0)->ops.size(), 2u);
  EXPECT_EQ(merged.find_program(0)->buffer_bytes[kUserBuf], 16u);
}

TEST(ScheduleTest, LevelsMetadataRoundTrips) {
  Schedule s;
  EXPECT_EQ(s.levels(), 1);
  s.set_levels(9);
  EXPECT_EQ(s.levels(), 9);
}

}  // namespace
}  // namespace intercom
