#include "intercom/ir/validate.hpp"

#include <gtest/gtest.h>

#include "intercom/util/error.hpp"

namespace intercom {
namespace {

BufSlice user(std::size_t offset, std::size_t bytes) {
  return BufSlice{kUserBuf, offset, bytes};
}

TEST(ValidateTest, EmptyScheduleIsValid) {
  Schedule s;
  EXPECT_TRUE(validate(s).ok);
}

TEST(ValidateTest, MatchedTransferIsValid) {
  Schedule s;
  s.add_transfer(0, 1, user(0, 8), user(0, 8));
  const auto result = validate(s);
  EXPECT_TRUE(result.ok) << result.message();
}

TEST(ValidateTest, UnmatchedSendDeadlocks) {
  Schedule s;
  s.reserve_slice(0, user(0, 8));
  s.program(0).ops.push_back(Op::send(1, user(0, 8), 0));
  const auto result = validate(s);
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.message().find("deadlock"), std::string::npos);
}

TEST(ValidateTest, TagMismatchDeadlocks) {
  Schedule s;
  s.reserve_slice(0, user(0, 8));
  s.reserve_slice(1, user(0, 8));
  s.program(0).ops.push_back(Op::send(1, user(0, 8), 7));
  s.program(1).ops.push_back(Op::recv(0, user(0, 8), 8));
  EXPECT_FALSE(validate(s).ok);
}

TEST(ValidateTest, LengthMismatchDeadlocks) {
  Schedule s;
  s.reserve_slice(0, user(0, 8));
  s.reserve_slice(1, user(0, 16));
  s.program(0).ops.push_back(Op::send(1, user(0, 8), 0));
  s.program(1).ops.push_back(Op::recv(0, user(0, 16), 0));
  EXPECT_FALSE(validate(s).ok);
}

TEST(ValidateTest, OutOfBufferSliceRejected) {
  Schedule s;
  s.reserve_slice(0, user(0, 4));
  s.reserve_slice(1, user(0, 8));
  s.program(0).ops.push_back(Op::send(1, user(0, 8), 0));  // exceeds 4 bytes
  s.program(1).ops.push_back(Op::recv(0, user(0, 8), 0));
  const auto result = validate(s);
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.message().find("exceeds buffer"), std::string::npos);
}

TEST(ValidateTest, UndeclaredBufferRejected) {
  Schedule s;
  s.program(0).ops.push_back(
      Op::copy(BufSlice{5, 0, 4}, BufSlice{5, 4, 4}));
  EXPECT_FALSE(validate(s).ok);
}

TEST(ValidateTest, ZeroLengthTransferRejected) {
  Schedule s;
  s.reserve_slice(0, user(0, 8));
  s.reserve_slice(1, user(0, 8));
  s.program(0).ops.push_back(Op::send(1, user(0, 0), 0));
  s.program(1).ops.push_back(Op::recv(0, user(0, 0), 0));
  EXPECT_FALSE(validate(s).ok);
}

TEST(ValidateTest, SelfSendRejected) {
  Schedule s;
  s.reserve_slice(0, user(0, 8));
  s.program(0).ops.push_back(Op::send(0, user(0, 8), 0));
  EXPECT_FALSE(validate(s).ok);
}

TEST(ValidateTest, OrderSensitiveRendezvousDeadlockDetected) {
  // Two nodes that both send first deadlock under rendezvous semantics.
  Schedule s;
  s.reserve_slice(0, user(0, 8));
  s.reserve_slice(1, user(0, 8));
  s.program(0).ops.push_back(Op::send(1, user(0, 8), 0));
  s.program(0).ops.push_back(Op::recv(1, user(0, 8), 1));
  s.program(1).ops.push_back(Op::send(0, user(0, 8), 1));
  s.program(1).ops.push_back(Op::recv(0, user(0, 8), 0));
  const auto result = validate(s);
  EXPECT_FALSE(result.ok);
}

TEST(ValidateTest, SendRecvExchangeIsValid) {
  // The same head-to-head exchange succeeds with fused sendrecv ops, which
  // is exactly why the IR has them (ring steps).
  Schedule s;
  s.reserve_slice(0, user(0, 16));
  s.reserve_slice(1, user(0, 16));
  s.program(0).ops.push_back(
      Op::sendrecv(1, user(0, 8), 0, 1, user(8, 8), 1));
  s.program(1).ops.push_back(
      Op::sendrecv(0, user(0, 8), 1, 0, user(8, 8), 0));
  const auto result = validate(s);
  EXPECT_TRUE(result.ok) << result.message();
}

TEST(ValidateTest, ThreeNodeRingOfSendRecvsIsValid) {
  Schedule s;
  for (int i = 0; i < 3; ++i) s.reserve_slice(i, user(0, 24));
  for (int i = 0; i < 3; ++i) {
    const int next = (i + 1) % 3;
    const int prev = (i + 2) % 3;
    // Tag by receiving node so both sides agree.
    s.program(i).ops.push_back(
        Op::sendrecv(next, user(0, 8), next, prev, user(8, 8), i));
  }
  const auto result = validate(s);
  EXPECT_TRUE(result.ok) << result.message();
}

TEST(ValidateTest, LocalOpsAlwaysProgress) {
  Schedule s;
  s.reserve_slice(0, user(0, 16));
  s.program(0).ops.push_back(Op::copy(user(0, 8), user(8, 8)));
  s.program(0).ops.push_back(Op::combine(user(0, 8), user(8, 8)));
  EXPECT_TRUE(validate(s).ok);
}

TEST(ValidateTest, ValidateOrThrowThrowsOnBadSchedule) {
  Schedule s;
  s.set_algorithm("broken");
  s.reserve_slice(0, user(0, 8));
  s.program(0).ops.push_back(Op::send(1, user(0, 8), 0));
  EXPECT_THROW(validate_or_throw(s), Error);
}

}  // namespace
}  // namespace intercom
