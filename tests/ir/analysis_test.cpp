// Schedule analysis tests: the zero-contention critical path must equal the
// analytic costs for conflict-free algorithms and lower-bound the simulator.
#include <gtest/gtest.h>

#include "intercom/core/algorithms.hpp"
#include "intercom/core/planner.hpp"
#include "intercom/ir/analysis.hpp"
#include "intercom/model/primitive_costs.hpp"
#include "intercom/sim/engine.hpp"
#include "intercom/util/error.hpp"
#include "intercom/util/factorization.hpp"

namespace intercom {
namespace {

TEST(AnalysisTest, SingleTransfer) {
  Schedule s;
  s.set_levels(0);
  const BufSlice u{kUserBuf, 0, 100};
  s.add_transfer(0, 1, u, u);
  const ScheduleStats stats = analyze(s, MachineParams::unit());
  EXPECT_EQ(stats.transfers, 1u);
  EXPECT_EQ(stats.bytes_moved, 100u);
  EXPECT_EQ(stats.alpha_depth, 1);
  EXPECT_DOUBLE_EQ(stats.critical_seconds, 101.0);
}

TEST(AnalysisTest, MstBroadcastCriticalPathExact) {
  for (int p : {2, 3, 8, 30, 31}) {
    Schedule s;
    planner::Ctx ctx{s, 1};
    planner::mst_broadcast(ctx, Group::contiguous(p), ElemRange{0, 500}, 0);
    s.set_levels(0);
    const ScheduleStats stats = analyze(s, MachineParams::unit());
    EXPECT_EQ(stats.alpha_depth, ceil_log2(p)) << "p=" << p;
    EXPECT_DOUBLE_EQ(stats.critical_seconds, ceil_log2(p) * (1.0 + 500.0))
        << "p=" << p;
  }
}

TEST(AnalysisTest, BucketCollectCriticalPathExact) {
  const int p = 10;
  Schedule s;
  planner::Ctx ctx{s, 1};
  planner::bucket_collect(ctx, Group::contiguous(p), ElemRange{0, 1000});
  s.set_levels(0);
  const ScheduleStats stats = analyze(s, MachineParams::unit());
  EXPECT_EQ(stats.alpha_depth, p - 1);
  EXPECT_DOUBLE_EQ(stats.critical_seconds, (p - 1) * (1.0 + 100.0));
}

TEST(AnalysisTest, CombineBytesCounted) {
  const int p = 4;
  Schedule s;
  planner::Ctx ctx{s, 1};
  planner::mst_combine_to_one(ctx, Group::contiguous(p), ElemRange{0, 64}, 0);
  s.set_levels(0);
  const ScheduleStats stats = analyze(s, MachineParams::unit());
  // p-1 receives are each combined: 3 * 64 bytes through gamma.
  EXPECT_EQ(stats.combine_bytes, 3u * 64u);
}

TEST(AnalysisTest, LowerBoundsSimulatorOnConflictedSchedules) {
  // For a strided hybrid the simulator charges link sharing; the analysis
  // (zero contention) must lower-bound it, and they must agree for the
  // conflict-free pure algorithms.
  const Planner planner(MachineParams::unit());
  const int p = 30;
  SimParams params;
  params.machine = MachineParams::unit();
  WormholeSimulator sim(Mesh2D(1, p), params);
  const Group g = Group::contiguous(p);
  for (const auto& strat :
       {HybridStrategy{{2, 15}, InnerAlg::kShortVector, false},
        HybridStrategy{{30}, InnerAlg::kShortVector, false},
        HybridStrategy{{30}, InnerAlg::kScatterCollect, false}}) {
    const Schedule s = planner.plan_with_strategy(Collective::kBroadcast, g,
                                                  3000, 1, 0, strat);
    const double analyzed =
        analyze(s, MachineParams::unit()).critical_seconds;
    const double simulated = sim.run(s).seconds;
    EXPECT_LE(analyzed, simulated + 1e-9) << strat.label();
    if (strat.dims.size() == 1) {
      EXPECT_NEAR(analyzed, simulated, simulated * 1e-9) << strat.label();
    }
  }
}

TEST(AnalysisTest, PerLevelOverheadIncluded) {
  Schedule s;
  s.set_levels(4);
  MachineParams params = MachineParams::unit();
  params.per_level_overhead = 10.0;
  EXPECT_DOUBLE_EQ(analyze(s, params).critical_seconds, 40.0);
}

TEST(AnalysisTest, DeadlockedScheduleThrows) {
  Schedule s;
  s.reserve_slice(0, BufSlice{kUserBuf, 0, 8});
  s.program(0).ops.push_back(Op::send(1, BufSlice{kUserBuf, 0, 8}, 0));
  EXPECT_THROW(analyze(s, MachineParams::unit()), Error);
}

}  // namespace
}  // namespace intercom
