// Validator mutation testing: corrupting any transfer of a valid schedule —
// retagging a receive, resizing it, deleting an op, or redirecting a peer —
// must be caught by validate().  This pins the validator's sensitivity; a
// validator that accepts corrupted schedules would let planner bugs reach
// the simulator and runtime silently.
#include <gtest/gtest.h>

#include "intercom/core/planner.hpp"
#include "intercom/ir/validate.hpp"
#include "intercom/util/rng.hpp"

namespace intercom {
namespace {

// Collects (node, op index) of ops with a recv/send half.
std::vector<std::pair<int, std::size_t>> comm_ops(const Schedule& s,
                                                  bool want_send) {
  std::vector<std::pair<int, std::size_t>> out;
  for (const auto& prog : s.programs()) {
    for (std::size_t i = 0; i < prog.ops.size(); ++i) {
      const Op& op = prog.ops[i];
      if ((want_send && op.has_send()) || (!want_send && op.has_recv())) {
        out.emplace_back(prog.node, i);
      }
    }
  }
  return out;
}

Op& op_at(Schedule& s, int node, std::size_t index) {
  return s.program(node).ops[index];
}

class MutationP : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MutationP, CorruptedSchedulesAreRejected) {
  Rng rng(GetParam());
  const Planner planner(MachineParams::paragon());
  for (int trial = 0; trial < 30; ++trial) {
    const int p = static_cast<int>(rng.next_in_range(2, 16));
    const std::size_t elems =
        static_cast<std::size_t>(rng.next_in_range(static_cast<int>(p), 200));
    constexpr Collective kAll[] = {
        Collective::kBroadcast, Collective::kCollect,
        Collective::kCombineToAll, Collective::kDistributedCombine,
        Collective::kGather};
    const Collective collective = kAll[rng.next_in_range(0, 4)];
    Schedule s =
        planner.plan(collective, Group::contiguous(p), elems, 8, 0);
    ASSERT_TRUE(validate(s).ok);

    const auto mutation = rng.next_in_range(0, 3);
    switch (mutation) {
      case 0: {  // retag a random recv half
        auto recvs = comm_ops(s, /*want_send=*/false);
        if (recvs.empty()) continue;
        const auto [node, idx] =
            recvs[static_cast<std::size_t>(rng.next_in_range(
                0, static_cast<std::int64_t>(recvs.size()) - 1))];
        Op& op = op_at(s, node, idx);
        if (op.kind == OpKind::kSendRecv) {
          op.tag2 += 100000;
        } else {
          op.tag += 100000;
        }
        break;
      }
      case 1: {  // grow a random recv's length (reserve so pass 1 stays ok)
        auto recvs = comm_ops(s, false);
        if (recvs.empty()) continue;
        const auto [node, idx] =
            recvs[static_cast<std::size_t>(rng.next_in_range(
                0, static_cast<std::int64_t>(recvs.size()) - 1))];
        Op& op = op_at(s, node, idx);
        op.dst.bytes += 8;
        s.reserve_slice(node, op.dst);
        break;
      }
      case 2: {  // delete a random communication op entirely
        auto sends = comm_ops(s, true);
        if (sends.empty()) continue;
        const auto [node, idx] =
            sends[static_cast<std::size_t>(rng.next_in_range(
                0, static_cast<std::int64_t>(sends.size()) - 1))];
        auto& ops = s.program(node).ops;
        ops.erase(ops.begin() + static_cast<std::ptrdiff_t>(idx));
        break;
      }
      default: {  // redirect a random send to a different peer
        if (p < 3) continue;  // needs a third node to redirect to
        auto sends = comm_ops(s, true);
        if (sends.empty()) continue;
        const auto [node, idx] =
            sends[static_cast<std::size_t>(rng.next_in_range(
                0, static_cast<std::int64_t>(sends.size()) - 1))];
        Op& op = op_at(s, node, idx);
        op.peer = (op.peer + 1) % p == node ? (op.peer + 2) % p
                                            : (op.peer + 1) % p;
        if (op.peer == node) op.peer = (op.peer + 1) % p;
        break;
      }
    }
    const auto result = validate(s);
    EXPECT_FALSE(result.ok)
        << "trial " << trial << " mutation " << mutation << " on "
        << s.algorithm() << " was not caught";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MutationP,
                         ::testing::Values(101u, 202u, 303u, 404u, 505u));

}  // namespace
}  // namespace intercom
