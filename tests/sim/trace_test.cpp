// Simulator trace recording and timeline rendering tests.
#include <gtest/gtest.h>

#include "intercom/core/algorithms.hpp"
#include "intercom/sim/engine.hpp"

namespace intercom {
namespace {

SimParams traced_unit() {
  SimParams p;
  p.machine = MachineParams::unit();
  p.record_trace = true;
  return p;
}

TEST(TraceTest, SingleTransferRecord) {
  WormholeSimulator sim(Mesh2D(1, 2), traced_unit());
  Schedule s;
  s.set_levels(0);
  const BufSlice u{kUserBuf, 0, 50};
  s.add_transfer(0, 1, u, u);
  const SimResult r = sim.run(s);
  ASSERT_EQ(r.trace.size(), 1u);
  const TransferRecord& rec = r.trace[0];
  EXPECT_EQ(rec.src, 0);
  EXPECT_EQ(rec.dst, 1);
  EXPECT_EQ(rec.bytes, 50u);
  EXPECT_DOUBLE_EQ(rec.posted, 0.0);
  EXPECT_DOUBLE_EQ(rec.data_start, 1.0);  // alpha
  EXPECT_DOUBLE_EQ(rec.finish, 51.0);
}

TEST(TraceTest, DisabledByDefault) {
  SimParams p;
  p.machine = MachineParams::unit();
  WormholeSimulator sim(Mesh2D(1, 2), p);
  Schedule s;
  s.set_levels(0);
  const BufSlice u{kUserBuf, 0, 8};
  s.add_transfer(0, 1, u, u);
  EXPECT_TRUE(sim.run(s).trace.empty());
}

TEST(TraceTest, CountsMatchTransfers) {
  WormholeSimulator sim(Mesh2D(1, 12), traced_unit());
  Schedule s;
  planner::Ctx ctx{s, 1};
  planner::mst_broadcast(ctx, Group::contiguous(12), ElemRange{0, 120}, 0);
  s.set_levels(0);
  const SimResult r = sim.run(s);
  EXPECT_EQ(r.trace.size(), r.transfers);
  EXPECT_EQ(r.trace.size(), 11u);
  // Every record is causally ordered.
  for (const auto& rec : r.trace) {
    EXPECT_LE(rec.posted, rec.data_start);
    EXPECT_LT(rec.data_start, rec.finish);
    EXPECT_LE(rec.finish, r.seconds);
  }
}

TEST(TraceTest, TimelineRenders) {
  WormholeSimulator sim(Mesh2D(1, 4), traced_unit());
  Schedule s;
  planner::Ctx ctx{s, 1};
  planner::bucket_collect(ctx, Group::contiguous(4), ElemRange{0, 40});
  s.set_levels(0);
  const SimResult r = sim.run(s);
  const std::string timeline = render_timeline(r, 40);
  // One row per node plus the header.
  EXPECT_NE(timeline.find("node 0"), std::string::npos);
  EXPECT_NE(timeline.find("node 3"), std::string::npos);
  EXPECT_NE(timeline.find('#'), std::string::npos);
  EXPECT_NE(timeline.find("timeline"), std::string::npos);
}

TEST(TraceTest, EmptyTraceRenders) {
  SimResult r;
  EXPECT_EQ(render_timeline(r), "(no trace recorded)\n");
}

}  // namespace
}  // namespace intercom
