// Cross-validation of the two performance substrates: the discrete-event
// simulation of a generated schedule must agree with the analytic cost model
// that drives strategy selection.  Conflict-free algorithms must agree
// tightly; hybrids with interleaved subgroups must agree within a modest
// tolerance (the model charges worst-case sharing for whole stages).
#include <gtest/gtest.h>

#include "intercom/core/planner.hpp"
#include "intercom/model/hybrid_costs.hpp"
#include "intercom/sim/engine.hpp"
#include "intercom/topo/submesh.hpp"

namespace intercom {
namespace {

SimParams unit_params() {
  SimParams p;
  p.machine = MachineParams::unit();
  return p;
}

TEST(SimVsModelTest, MstBroadcastExact) {
  const int p = 30;
  const std::size_t n = 3000;
  const Planner planner(MachineParams::unit());
  const HybridStrategy mst{{p}, InnerAlg::kShortVector, false};
  const Schedule s = planner.plan_with_strategy(
      Collective::kBroadcast, Group::contiguous(p), n, 1, 0, mst);
  WormholeSimulator sim(Mesh2D(1, p), unit_params());
  const double predicted =
      hybrid_cost(Collective::kBroadcast, mst, static_cast<double>(n))
          .seconds(MachineParams::unit());
  EXPECT_DOUBLE_EQ(sim.run(s).seconds, predicted);
}

TEST(SimVsModelTest, BucketCollectExactWhenDivisible) {
  const int p = 30;
  const std::size_t n = 30 * 64;
  const Planner planner(MachineParams::unit());
  const HybridStrategy ring{{p}, InnerAlg::kScatterCollect, false};
  const Schedule s = planner.plan_with_strategy(
      Collective::kCollect, Group::contiguous(p), n, 1, 0, ring);
  WormholeSimulator sim(Mesh2D(1, p), unit_params());
  const double predicted =
      hybrid_cost(Collective::kCollect, ring, static_cast<double>(n))
          .seconds(MachineParams::unit());
  EXPECT_NEAR(sim.run(s).seconds, predicted, predicted * 1e-9);
}

TEST(SimVsModelTest, ScatterCollectBroadcastClose) {
  const int p = 30;
  const std::size_t n = 30 * 128;
  const Planner planner(MachineParams::unit());
  const HybridStrategy sc{{p}, InnerAlg::kScatterCollect, false};
  const Schedule s = planner.plan_with_strategy(
      Collective::kBroadcast, Group::contiguous(p), n, 1, 0, sc);
  WormholeSimulator sim(Mesh2D(1, p), unit_params());
  const double predicted =
      hybrid_cost(Collective::kBroadcast, sc, static_cast<double>(n))
          .seconds(MachineParams::unit());
  const double simulated = sim.run(s).seconds;
  EXPECT_NEAR(simulated, predicted, predicted * 0.05);
}

class SimVsModelHybridP : public ::testing::TestWithParam<HybridStrategy> {};

TEST_P(SimVsModelHybridP, BroadcastWithinTolerance) {
  const HybridStrategy strat = GetParam();
  const int p = strat.node_count();
  const std::size_t n = 30 * 512;
  const Planner planner(MachineParams::unit());
  const Schedule s = planner.plan_with_strategy(
      Collective::kBroadcast, Group::contiguous(p), n, 1, 0, strat);
  WormholeSimulator sim(Mesh2D(1, p), unit_params());
  const double predicted =
      hybrid_cost(Collective::kBroadcast, strat, static_cast<double>(n))
          .seconds(MachineParams::unit());
  const double simulated = sim.run(s).seconds;
  // The model charges worst-case link sharing for entire stages; the
  // simulation's fluid sharing can be somewhat kinder but must show the same
  // magnitude.
  EXPECT_LT(std::abs(simulated - predicted), predicted * 0.35)
      << strat.label() << ": simulated " << simulated << " predicted "
      << predicted;
}

INSTANTIATE_TEST_SUITE_P(
    Table2Strategies, SimVsModelHybridP,
    ::testing::Values(
        HybridStrategy{{2, 15}, InnerAlg::kShortVector, false},
        HybridStrategy{{3, 10}, InnerAlg::kShortVector, false},
        HybridStrategy{{2, 15}, InnerAlg::kScatterCollect, false},
        HybridStrategy{{3, 10}, InnerAlg::kScatterCollect, false},
        HybridStrategy{{5, 6}, InnerAlg::kScatterCollect, false},
        HybridStrategy{{2, 3, 5}, InnerAlg::kShortVector, false}));

TEST(SimVsModelTest, ConflictsActuallyMaterializeForInterleavedStages) {
  // The bold-face compensation factors exist because interleaved subgroups
  // share links: the simulator must report peak link load > 1 for a strided
  // hybrid but exactly 1 for the conflict-free building blocks.
  const int p = 30;
  const std::size_t n = 3000;
  const Planner planner(MachineParams::unit());
  WormholeSimulator sim(Mesh2D(1, p), unit_params());

  const Schedule hybrid = planner.plan_with_strategy(
      Collective::kBroadcast, Group::contiguous(p), n, 1, 0,
      HybridStrategy{{2, 15}, InnerAlg::kShortVector, false});
  EXPECT_GT(sim.run(hybrid).peak_link_load, 1);

  const Schedule mst = planner.plan_with_strategy(
      Collective::kBroadcast, Group::contiguous(p), n, 1, 0,
      HybridStrategy{{p}, InnerAlg::kShortVector, false});
  EXPECT_EQ(sim.run(mst).peak_link_load, 1);
}

TEST(SimVsModelTest, MeshAlignedCollectBeatsRingOnLatency) {
  // Section 7.1: on a 16 x 32 mesh the staged row/column collect has
  // (r + c - 2) startups vs the ring's (p - 1).
  const Mesh2D mesh(16, 32);
  const Planner planner(MachineParams::unit(), mesh);
  const Group whole = whole_mesh_group(mesh);
  SimParams params = unit_params();
  params.machine.beta = 0.0;   // isolate startup costs
  params.machine.gamma = 0.0;
  WormholeSimulator sim(mesh, params);
  const std::size_t n = 512;

  const Schedule staged = planner.plan_with_strategy(
      Collective::kCollect, whole, n, 1, 0,
      HybridStrategy{{32, 16}, InnerAlg::kScatterCollect, true});
  const Schedule ring = planner.plan_with_strategy(
      Collective::kCollect, whole, n, 1, 0,
      HybridStrategy{{512}, InnerAlg::kScatterCollect, false});
  const double staged_t = sim.run(staged).seconds;
  const double ring_t = sim.run(ring).seconds;
  EXPECT_DOUBLE_EQ(staged_t, 46.0);  // (16 + 32 - 2) alpha
  EXPECT_DOUBLE_EQ(ring_t, 511.0);
}

TEST(SimVsModelTest, MeshAlignedStagesAreConflictFree) {
  const Mesh2D mesh(8, 8);
  const Planner planner(MachineParams::unit(), mesh);
  const Group whole = whole_mesh_group(mesh);
  WormholeSimulator sim(mesh, unit_params());
  const Schedule staged = planner.plan_with_strategy(
      Collective::kCollect, whole, 64 * 16, 1, 0,
      HybridStrategy{{8, 8}, InnerAlg::kScatterCollect, true});
  EXPECT_EQ(sim.run(staged).peak_link_load, 1);
}

}  // namespace
}  // namespace intercom
