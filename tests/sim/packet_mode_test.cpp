// The schedule simulator on the packet engine (SimEngine::kPacket): the
// zero-load law must match the fluid engine exactly, replays must be
// bit-identical, and — the property the fluid model is kept around to
// regression-check — the two engines must rank competing algorithms the
// same way at the paper's machine sizes.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "intercom/core/planner.hpp"
#include "intercom/sim/engine.hpp"
#include "intercom/util/error.hpp"

namespace intercom {
namespace {

SimParams params_for(SimEngine engine) {
  SimParams p;
  p.machine = MachineParams::unit();
  p.engine = engine;
  return p;
}

BufSlice user(std::size_t offset, std::size_t bytes) {
  return BufSlice{kUserBuf, offset, bytes};
}

TEST(PacketModeTest, SingleTransferMatchesTheFluidEngineExactly) {
  Schedule s;
  s.set_levels(0);
  s.add_transfer(0, 5, user(0, 100), user(0, 100));
  WormholeSimulator fluid(Mesh2D(1, 8), params_for(SimEngine::kFluid));
  WormholeSimulator packet(Mesh2D(1, 8), params_for(SimEngine::kPacket));
  EXPECT_DOUBLE_EQ(packet.run(s).seconds, fluid.run(s).seconds);
  EXPECT_DOUBLE_EQ(packet.run(s).seconds, 1.0 + 100.0);
}

TEST(PacketModeTest, ConflictFreeSchedulesAgreeAcrossEngines) {
  // Disjoint pairs: no sharing, both engines reduce to alpha + n*beta.
  Schedule s;
  s.set_levels(0);
  for (int i = 0; i < 4; ++i) {
    s.add_transfer(2 * i, 2 * i + 1, user(0, 400), user(0, 400));
  }
  WormholeSimulator fluid(Mesh2D(1, 8), params_for(SimEngine::kFluid));
  WormholeSimulator packet(Mesh2D(1, 8), params_for(SimEngine::kPacket));
  const SimResult rf = fluid.run(s);
  const SimResult rp = packet.run(s);
  EXPECT_DOUBLE_EQ(rp.seconds, rf.seconds);
  EXPECT_EQ(rp.peak_link_load, 1);
  EXPECT_EQ(rf.peak_link_load, 1);
}

TEST(PacketModeTest, ContendedScheduleDetectsTheConflict) {
  // 0->3 and 1->2 run concurrently (distinct endpoints, so program order
  // cannot serialize them) and share channel 1->2; the packet engine must
  // surface the contention in both the makespan and the peak certificate.
  Schedule s;
  s.set_levels(0);
  s.add_transfer(0, 3, user(0, 100), user(0, 100));
  s.add_transfer(1, 2, user(0, 100), user(0, 100));
  WormholeSimulator packet(Mesh2D(1, 4), params_for(SimEngine::kPacket));
  const SimResult r = packet.run(s);
  EXPECT_EQ(r.peak_link_load, 2);
  // The loser serializes behind the winner's full drain on the shared
  // channel.
  EXPECT_GE(r.seconds, 1.0 + 200.0 - 1e-9);
}

TEST(PacketModeTest, ReplaysAreBitIdentical) {
  const Planner planner(MachineParams::unit());
  const HybridStrategy sc{{64}, InnerAlg::kScatterCollect, false};
  const Schedule s = planner.plan_with_strategy(
      Collective::kCollect, Group::contiguous(64), 64 * 128, 1, 0, sc);
  WormholeSimulator sim(Mesh2D(8, 8), params_for(SimEngine::kPacket));
  const SimResult a = sim.run(s);
  const SimResult b = sim.run(s);
  EXPECT_EQ(a.seconds, b.seconds);  // bitwise, not just close
  EXPECT_EQ(a.peak_link_load, b.peak_link_load);
}

TEST(PacketModeTest, TieSeedChangesNothingWithoutTies) {
  Schedule s;
  s.set_levels(0);
  s.add_transfer(0, 1, user(0, 256), user(0, 256));
  SimParams p = params_for(SimEngine::kPacket);
  p.tie_seed = 1;
  WormholeSimulator a(Mesh2D(1, 4), p);
  p.tie_seed = 99;
  WormholeSimulator b(Mesh2D(1, 4), p);
  EXPECT_EQ(a.run(s).seconds, b.run(s).seconds);
}

TEST(PacketModeTest, RejectsOutOfDomainParams) {
  SimParams p = params_for(SimEngine::kPacket);
  p.packet_bytes = 0;
  EXPECT_THROW(WormholeSimulator(Mesh2D(1, 4), p), ConfigError);
  SimParams j = params_for(SimEngine::kFluid);
  j.jitter_mean = -1.0;
  EXPECT_THROW(WormholeSimulator(Mesh2D(1, 4), j), ConfigError);
}

// The acceptance bar for swapping the default contention model: at the
// paper's machine sizes the packet engine must rank competing algorithms
// exactly as the fluid engine does, so every conclusion drawn from the
// fluid-era reports survives the engine change.
TEST(PacketModeTest, EnginesAgreeOnAlgorithmRankingAt64Nodes) {
  const int p = 64;
  const Planner planner(MachineParams::paragon());
  const std::vector<HybridStrategy> candidates = {
      {{p}, InnerAlg::kShortVector, false},
      {{p}, InnerAlg::kScatterCollect, false},
      {{8, 8}, InnerAlg::kScatterCollect, false},
      {{p}, InnerAlg::kCirculant, false},
  };
  for (const std::size_t n : {std::size_t{512}, std::size_t{65536}}) {
    std::vector<double> fluid_s, packet_s;
    for (const HybridStrategy& strat : candidates) {
      const Schedule s = planner.plan_with_strategy(
          Collective::kCollect, Group::contiguous(p), n, 8, 0, strat);
      SimParams sp;
      sp.machine = MachineParams::paragon();
      sp.engine = SimEngine::kFluid;
      WormholeSimulator fluid(Mesh2D(8, 8), sp);
      sp.engine = SimEngine::kPacket;
      WormholeSimulator packet(Mesh2D(8, 8), sp);
      fluid_s.push_back(fluid.run(s).seconds);
      packet_s.push_back(packet.run(s).seconds);
    }
    // Same ranking: the permutation that sorts one sorts the other.
    std::vector<std::size_t> by_fluid(candidates.size());
    std::vector<std::size_t> by_packet(candidates.size());
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      by_fluid[i] = by_packet[i] = i;
    }
    std::sort(by_fluid.begin(), by_fluid.end(),
              [&](std::size_t a, std::size_t b) {
                return fluid_s[a] < fluid_s[b];
              });
    std::sort(by_packet.begin(), by_packet.end(),
              [&](std::size_t a, std::size_t b) {
                return packet_s[a] < packet_s[b];
              });
    EXPECT_EQ(by_fluid, by_packet) << "n = " << n;
  }
}

}  // namespace
}  // namespace intercom
