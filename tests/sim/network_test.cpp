#include "intercom/sim/network.hpp"

#include <gtest/gtest.h>

#include "intercom/util/error.hpp"

namespace intercom {
namespace {

TEST(LinkLoadTest, AddRemoveTracksLoadsAndPeak) {
  Mesh2D mesh(1, 4);
  LinkLoadTracker loads(mesh);
  const auto r02 = route_links(mesh, 0, 2);
  const auto r13 = route_links(mesh, 1, 3);
  loads.add(r02);
  loads.add(r13);
  // Link 1->2 is shared by both routes.
  EXPECT_EQ(loads.peak_load(), 2);
  loads.remove(r02);
  EXPECT_EQ(loads.peak_load(), 2);  // peak is sticky
  for (int l : r13) EXPECT_GE(loads.load(l), 1);
  loads.remove(r13);
}

TEST(LinkLoadTest, SharingFactorUsesCapacity) {
  Mesh2D mesh(1, 3);
  LinkLoadTracker loads(mesh);
  const auto r01 = route_links(mesh, 0, 1);
  loads.add(r01);
  loads.add(r01);
  loads.add(r01);
  EXPECT_DOUBLE_EQ(loads.sharing(r01, 1.0), 3.0);
  // Excess link bandwidth (Section 7.1): capacity 2 halves the sharing, and
  // never drops below 1.
  EXPECT_DOUBLE_EQ(loads.sharing(r01, 2.0), 1.5);
  EXPECT_DOUBLE_EQ(loads.sharing(r01, 8.0), 1.0);
}

TEST(LinkLoadTest, OppositeDirectionsDoNotShare) {
  Mesh2D mesh(1, 5);
  LinkLoadTracker loads(mesh);
  const auto right = route_links(mesh, 0, 4);
  const auto left = route_links(mesh, 4, 0);
  loads.add(right);
  EXPECT_DOUBLE_EQ(loads.sharing(left, 1.0), 1.0);
}

TEST(LinkLoadTest, RemoveBelowZeroIsAnError) {
  Mesh2D mesh(1, 2);
  LinkLoadTracker loads(mesh);
  EXPECT_THROW(loads.remove(route_links(mesh, 0, 1)), Error);
}

TEST(RouteLinksTest, LengthMatchesDistance) {
  Mesh2D mesh(4, 4);
  EXPECT_EQ(route_links(mesh, 0, 15).size(), 6u);
  EXPECT_TRUE(route_links(mesh, 3, 3).empty());
}

}  // namespace
}  // namespace intercom
