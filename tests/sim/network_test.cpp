#include "intercom/sim/network.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "intercom/topo/topology.hpp"
#include "intercom/util/error.hpp"

namespace intercom {
namespace {

// Routes now come from the shared Topology oracle (the sim and the fabric
// consume the same ones); these tests pair it with the load tracker.
std::vector<int> xy_route(const Mesh2D& mesh, int src, int dst) {
  return MeshTopology(mesh).route(src, dst);
}

TEST(LinkLoadTest, AddRemoveTracksLoadsAndPeak) {
  Mesh2D mesh(1, 4);
  LinkLoadTracker loads(mesh);
  const auto r02 = xy_route(mesh, 0, 2);
  const auto r13 = xy_route(mesh, 1, 3);
  loads.add(r02);
  loads.add(r13);
  // Link 1->2 is shared by both routes.
  EXPECT_EQ(loads.peak_load(), 2);
  loads.remove(r02);
  EXPECT_EQ(loads.peak_load(), 2);  // peak is sticky
  for (int l : r13) EXPECT_GE(loads.load(l), 1);
  loads.remove(r13);
}

TEST(LinkLoadTest, SharingFactorUsesCapacity) {
  Mesh2D mesh(1, 3);
  LinkLoadTracker loads(mesh);
  const auto r01 = xy_route(mesh, 0, 1);
  loads.add(r01);
  loads.add(r01);
  loads.add(r01);
  EXPECT_DOUBLE_EQ(loads.sharing(r01, 1.0), 3.0);
  // Excess link bandwidth (Section 7.1): capacity 2 halves the sharing, and
  // never drops below 1.
  EXPECT_DOUBLE_EQ(loads.sharing(r01, 2.0), 1.5);
  EXPECT_DOUBLE_EQ(loads.sharing(r01, 8.0), 1.0);
}

TEST(LinkLoadTest, OppositeDirectionsDoNotShare) {
  Mesh2D mesh(1, 5);
  LinkLoadTracker loads(mesh);
  const auto right = xy_route(mesh, 0, 4);
  const auto left = xy_route(mesh, 4, 0);
  loads.add(right);
  EXPECT_DOUBLE_EQ(loads.sharing(left, 1.0), 1.0);
}

TEST(LinkLoadTest, RemoveBelowZeroIsAnError) {
  Mesh2D mesh(1, 2);
  LinkLoadTracker loads(mesh);
  EXPECT_THROW(loads.remove(xy_route(mesh, 0, 1)), Error);
}

TEST(RouteTableTest, LengthMatchesDistance) {
  RouteTable table(std::make_shared<MeshTopology>(Mesh2D(4, 4)));
  EXPECT_EQ(table.of(0, 15).size(), 6u);
  EXPECT_TRUE(table.of(3, 3).empty());
}

TEST(RouteTableTest, CachedRouteReferenceIsStable) {
  RouteTable table(std::make_shared<MeshTopology>(Mesh2D(4, 4)));
  const std::vector<int>* first = &table.of(0, 15);
  // Populate many other entries; the first reference must survive (callers
  // hold routes across unlocked regions).
  for (int src = 0; src < 16; ++src) {
    for (int dst = 0; dst < 16; ++dst) table.of(src, dst);
  }
  EXPECT_EQ(first, &table.of(0, 15));
  EXPECT_EQ(first->size(), 6u);
}

TEST(RouteTableTest, NullTopologyIsAnError) {
  EXPECT_THROW(RouteTable(nullptr), Error);
}

}  // namespace
}  // namespace intercom
