// The discrete-event packet network: zero-load exactness against the
// machine model, per-channel serialization under contention, conflict and
// peak-load accounting, and bit-identical determinism.
#include "intercom/sim/event_engine.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "intercom/util/error.hpp"

namespace intercom {
namespace {

PacketNetParams unit_net() {
  PacketNetParams p;
  p.machine = MachineParams::unit();  // alpha = 1, beta = 1, tau = 0
  return p;
}

std::shared_ptr<const Topology> line(int n) {
  return std::make_shared<MeshTopology>(Mesh2D(1, n));
}

TEST(PacketNetworkTest, ZeroLoadMatchesAlphaPlusHopsTauPlusNBeta) {
  PacketNetParams p = unit_net();
  p.machine.tau_per_hop = 0.25;
  PacketNetwork net(line(8), p);
  const int id = net.submit(0, 5, 100, 0.0);
  net.run_until_delivered(id);
  // 5 hops: alpha + 5*tau + n*beta, single packet.
  EXPECT_DOUBLE_EQ(net.delivery_time(id), 1.0 + 5 * 0.25 + 100.0);
  EXPECT_EQ(net.peak_link_load(), 1);
  EXPECT_FALSE(net.conflicted(id));
}

TEST(PacketNetworkTest, MultiPacketTransferKeepsTheZeroLoadLaw) {
  // Packetization must not change the uncontended total: packets stream
  // back to back over every channel (virtual cut-through), so the last
  // packet clears the last channel at alpha + hops*tau + n*beta.
  PacketNetParams p = unit_net();
  p.machine.tau_per_hop = 0.5;
  p.packet_bytes = 64;
  PacketNetwork net(line(8), p);
  const int id = net.submit(0, 4, 1000, 0.0);  // 16 packets
  net.run_until_delivered(id);
  EXPECT_NEAR(net.delivery_time(id), 1.0 + 4 * 0.5 + 1000.0, 1e-9);
  EXPECT_EQ(net.peak_link_load(), 1);
}

TEST(PacketNetworkTest, SelfTransferCostsAlphaOnly) {
  PacketNetwork net(line(4), unit_net());
  const int id = net.submit(2, 2, 512, 3.0);
  net.run_until_delivered(id);
  EXPECT_DOUBLE_EQ(net.delivery_time(id), 3.0 + 1.0);
  EXPECT_DOUBLE_EQ(net.injection_end(id), net.delivery_time(id));
}

TEST(PacketNetworkTest, SharedChannelSerializesAndFlagsTheWaiter) {
  // 0->2 and 1->2 share channel 1->2; the later-granted transfer waits the
  // full serialization of the earlier one.
  PacketNetwork net(line(4), unit_net());
  const int a = net.submit(0, 2, 100, 0.0);
  const int b = net.submit(1, 2, 100, 0.0);
  net.drain();
  const double ta = net.delivery_time(a);
  const double tb = net.delivery_time(b);
  // One of them pays the other's 100-byte drain on the shared channel.
  EXPECT_DOUBLE_EQ(std::min(ta, tb), 1.0 + 100.0);
  EXPECT_GE(std::max(ta, tb), 1.0 + 200.0 - 1e-9);
  EXPECT_EQ(net.peak_link_load(), 2);
  EXPECT_TRUE(net.conflicted(a) || net.conflicted(b));
  // Exactly one waited: the winner streamed unhindered.
  EXPECT_FALSE(net.conflicted(a) && net.conflicted(b));
}

TEST(PacketNetworkTest, DisjointTransfersDoNotInteract) {
  PacketNetwork net(line(6), unit_net());
  const int a = net.submit(0, 1, 100, 0.0);
  const int b = net.submit(3, 4, 100, 0.0);
  net.drain();
  EXPECT_DOUBLE_EQ(net.delivery_time(a), 1.0 + 100.0);
  EXPECT_DOUBLE_EQ(net.delivery_time(b), 1.0 + 100.0);
  EXPECT_EQ(net.peak_link_load(), 1);
}

TEST(PacketNetworkTest, PastTimeSubmissionStillTimesCorrectly) {
  // SimFabric's per-node clocks advance unevenly: a submission whose start
  // lies before already-processed virtual time must still be timed from its
  // own start on idle channels.
  PacketNetwork net(line(8), unit_net());
  const int a = net.submit(0, 1, 1000, 50.0);
  net.run_until_delivered(a);
  const int b = net.submit(4, 5, 100, 0.0);  // starts in the processed past
  net.run_until_delivered(b);
  EXPECT_DOUBLE_EQ(net.delivery_time(b), 0.0 + 1.0 + 100.0);
}

TEST(PacketNetworkTest, BusyChannelDefersAPastTimeSubmission) {
  PacketNetwork net(line(4), unit_net());
  const int a = net.submit(0, 1, 1000, 0.0);
  net.run_until_delivered(a);  // channel 0->1 busy until 1001
  const int b = net.submit(0, 1, 100, 0.0);
  net.run_until_delivered(b);
  // b's packet waits for a's drain on the shared channel.
  EXPECT_GE(net.delivery_time(b), 1001.0);
  EXPECT_TRUE(net.conflicted(b));
}

TEST(PacketNetworkTest, DeterministicAcrossRunsAndSlotReuse) {
  const auto run_once = [](std::uint64_t seed) {
    PacketNetParams p = unit_net();
    p.seed = seed;
    p.packet_bytes = 128;
    PacketNetwork net(line(16), p);
    std::vector<double> times;
    // Several waves with recycling in between, so slot reuse is exercised.
    for (int wave = 0; wave < 3; ++wave) {
      std::vector<int> ids;
      for (int src = 0; src < 8; ++src) {
        ids.push_back(
            net.submit(src, 15 - src, 500 + 64 * src, wave * 10.0));
      }
      net.drain();
      for (int id : ids) {
        times.push_back(net.delivery_time(id));
        net.recycle(id);
      }
    }
    return times;
  };
  // Bit-identical replay for a fixed seed.
  EXPECT_EQ(run_once(7), run_once(7));
  // The tie-break seed only matters when same-instant ties exist; this
  // pattern has them (same-start submissions share channels), so at least
  // the runs must stay internally consistent.
  EXPECT_EQ(run_once(9), run_once(9));
}

TEST(PacketNetworkTest, SameInstantTieGoesToTheSeededKey) {
  // Two packets ready at the same instant on one channel: the grant order
  // is decided by the per-transfer seeded key, not submission order alone,
  // and replays identically.
  const auto winner_of = [](std::uint64_t seed) {
    PacketNetParams p = unit_net();
    p.seed = seed;
    PacketNetwork net(line(4), p);
    // Make the shared channel busy first so both requests queue as waiters
    // and the tie is resolved by the wait-queue comparator.
    const int warm = net.submit(1, 2, 1000, 0.0);
    const int a = net.submit(0, 2, 100, 0.0);
    const int b = net.submit(1, 2, 100, 0.0);
    net.drain();
    (void)warm;
    return net.delivery_time(a) < net.delivery_time(b) ? 'a' : 'b';
  };
  EXPECT_EQ(winner_of(1), winner_of(1));
  EXPECT_EQ(winner_of(2), winner_of(2));
}

TEST(PacketNetworkTest, LinkCountersAccumulatePerDistinctTransfer) {
  PacketNetParams p = unit_net();
  p.packet_bytes = 64;
  PacketNetwork net(line(4), p);
  const int a = net.submit(0, 2, 1000, 0.0);  // 16 packets, 2 hops
  net.run_until_delivered(a);
  std::uint64_t crossings = 0;
  for (std::uint64_t c : net.link_transfers()) crossings += c;
  EXPECT_EQ(crossings, 2u);  // distinct transfers per channel, not packets
  EXPECT_EQ(net.packets_granted(), 32u);
}

TEST(PacketNetworkTest, ResetClearsStateAndStats) {
  PacketNetwork net(line(4), unit_net());
  const int a = net.submit(0, 2, 100, 0.0);
  const int b = net.submit(1, 2, 100, 0.0);
  net.drain();
  (void)a;
  (void)b;
  EXPECT_EQ(net.peak_link_load(), 2);
  net.reset();
  EXPECT_EQ(net.peak_link_load(), 0);
  EXPECT_EQ(net.packets_granted(), 0u);
  EXPECT_TRUE(net.idle());
  const int c = net.submit(0, 1, 100, 0.0);
  net.run_until_delivered(c);
  EXPECT_DOUBLE_EQ(net.delivery_time(c), 1.0 + 100.0);
}

TEST(PacketNetworkTest, RecycledIdsAreRejectedUntilReused) {
  PacketNetwork net(line(4), unit_net());
  const int id = net.submit(0, 1, 10, 0.0);
  net.run_until_delivered(id);
  net.recycle(id);
  EXPECT_THROW(net.delivery_time(id), Error);
  EXPECT_THROW(net.recycle(id), Error);
}

TEST(PacketNetworkTest, RejectsBadConfigAndEndpoints) {
  PacketNetParams p = unit_net();
  p.packet_bytes = 0;
  EXPECT_THROW(PacketNetwork(line(4), p), ConfigError);
  PacketNetwork net(line(4), unit_net());
  EXPECT_THROW(net.submit(0, 4, 10, 0.0), Error);
  EXPECT_THROW(net.submit(-1, 2, 10, 0.0), Error);
}

TEST(PacketNetworkTest, DeliveryHandlerFiresOnce) {
  PacketNetwork net(line(4), unit_net());
  int fired = 0;
  double at = -1.0;
  net.set_delivery_handler([&](int, double t) {
    ++fired;
    at = t;
  });
  const int id = net.submit(0, 3, 100, 0.0);
  net.drain();
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(at, net.delivery_time(id));
}

}  // namespace
}  // namespace intercom
