// Section 7.1 model refinements in the simulator: the eager/long message
// protocol split and the per-hop worm-hole header latency.
#include <gtest/gtest.h>

#include "intercom/core/planner.hpp"
#include "intercom/core/tuner.hpp"
#include "intercom/sim/engine.hpp"

namespace intercom {
namespace {

BufSlice user(std::size_t offset, std::size_t bytes) {
  return BufSlice{kUserBuf, offset, bytes};
}

TEST(ProtocolTest, DefaultsAreSingleRegime) {
  const MachineParams m = MachineParams::unit();
  EXPECT_DOUBLE_EQ(m.alpha_for(8), m.alpha);
  EXPECT_DOUBLE_EQ(m.alpha_for(1 << 20), m.alpha);
  EXPECT_DOUBLE_EQ(m.beta_for(1 << 20), m.beta);
}

TEST(ProtocolTest, ThresholdSwitchesRegime) {
  MachineParams m = MachineParams::unit();
  m.long_threshold_bytes = 1024;
  m.alpha_long = 3.0;
  m.beta_long = 0.5;
  EXPECT_DOUBLE_EQ(m.alpha_for(1023), 1.0);
  EXPECT_DOUBLE_EQ(m.alpha_for(1024), 3.0);
  EXPECT_DOUBLE_EQ(m.beta_for(1023), 1.0);
  EXPECT_DOUBLE_EQ(m.beta_for(4096), 0.5);
}

TEST(ProtocolTest, SimulatorUsesPerMessageRegime) {
  SimParams params;
  params.machine = MachineParams::unit();
  params.machine.long_threshold_bytes = 100;
  params.machine.alpha_long = 5.0;   // rendezvous handshake costs more
  params.machine.beta_long = 0.25;   // but streams 4x faster
  WormholeSimulator sim(Mesh2D(1, 2), params);
  {
    Schedule s;
    s.set_levels(0);
    s.add_transfer(0, 1, user(0, 50), user(0, 50));
    EXPECT_DOUBLE_EQ(sim.run(s).seconds, 1.0 + 50.0);  // eager regime
  }
  {
    Schedule s;
    s.set_levels(0);
    s.add_transfer(0, 1, user(0, 400), user(0, 400));
    EXPECT_DOUBLE_EQ(sim.run(s).seconds, 5.0 + 100.0);  // long regime
  }
}

TEST(ProtocolTest, PerHopLatencyChargesDistance) {
  SimParams params;
  params.machine = MachineParams::unit();
  params.machine.tau_per_hop = 0.125;
  WormholeSimulator sim(Mesh2D(1, 16), params);
  Schedule near;
  near.set_levels(0);
  near.add_transfer(0, 1, user(0, 10), user(0, 10));
  Schedule far;
  far.set_levels(0);
  far.add_transfer(0, 15, user(0, 10), user(0, 10));
  const double near_t = sim.run(near).seconds;
  const double far_t = sim.run(far).seconds;
  EXPECT_DOUBLE_EQ(near_t, 1.0 + 0.125 + 10.0);
  EXPECT_DOUBLE_EQ(far_t, 1.0 + 15 * 0.125 + 10.0);
}

TEST(ProtocolTest, ScatterBucketsStraddleTheThreshold) {
  // A hybrid whose early stages send long messages and late stages short
  // ones exercises both regimes inside one schedule; the run must simply
  // complete and stay causal.
  SimParams params;
  params.machine = MachineParams::paragon();
  params.machine.long_threshold_bytes = 4096;
  params.machine.alpha_long = 3.0 * params.machine.alpha;
  params.machine.beta_long = 0.5 * params.machine.beta;
  WormholeSimulator sim(Mesh2D(1, 30), params);
  const Planner planner(params.machine);
  const Schedule s = planner.plan_with_strategy(
      Collective::kBroadcast, Group::contiguous(30), 1 << 16, 1, 0,
      HybridStrategy{{2, 15}, InnerAlg::kScatterCollect, false});
  const SimResult r = sim.run(s);
  EXPECT_GT(r.seconds, 0.0);
}

TEST(ProtocolTest, TunerAbsorbsModelProtocolMismatch) {
  // The analytic model is single-regime; on a two-regime machine the
  // simulation-feedback tuner must find a strategy at least as good as the
  // model's pick (and the winner it reports must be real).
  MachineParams machine = MachineParams::paragon();
  machine.long_threshold_bytes = 16384;
  machine.alpha_long = 4.0 * machine.alpha;  // expensive rendezvous
  machine.beta_long = 0.6 * machine.beta;
  const Planner planner(machine);
  SimParams params;
  params.machine = machine;
  const int p = 30;
  const WormholeSimulator sim(Mesh2D(1, p), params);
  const Group g = Group::contiguous(p);
  const std::size_t n = 1 << 17;
  const auto model_pick = planner.select_strategy(Collective::kBroadcast, g, n);
  const double model_sim =
      sim.run(planner.plan_with_strategy(Collective::kBroadcast, g, n, 1, 0,
                                         model_pick))
          .seconds;
  const TuneResult tuned =
      tune_strategy(planner, sim, Collective::kBroadcast, g, n, 1, 0, 8);
  EXPECT_LE(tuned.best_seconds, model_sim * (1.0 + 1e-12));
}

}  // namespace
}  // namespace intercom
