// Worm-hole simulator behaviour on hand-built schedules: the alpha + n*beta
// law, bandwidth sharing, one-port blocking, combine costs, jitter, and the
// per-level software overhead.
#include <gtest/gtest.h>

#include "intercom/sim/engine.hpp"
#include "intercom/util/error.hpp"

namespace intercom {
namespace {

SimParams unit_params() {
  SimParams p;
  p.machine = MachineParams::unit();
  return p;
}

BufSlice user(std::size_t offset, std::size_t bytes) {
  return BufSlice{kUserBuf, offset, bytes};
}

TEST(SimEngineTest, SingleTransferCostsAlphaPlusNBeta) {
  WormholeSimulator sim(Mesh2D(1, 8), unit_params());
  Schedule s;
  s.set_levels(0);
  s.add_transfer(0, 5, user(0, 100), user(0, 100));
  const SimResult r = sim.run(s);
  EXPECT_DOUBLE_EQ(r.seconds, 1.0 + 100.0);
  EXPECT_EQ(r.transfers, 1u);
  EXPECT_EQ(r.bytes_moved, 100u);
  EXPECT_EQ(r.peak_link_load, 1);
}

TEST(SimEngineTest, DistanceDoesNotChangeCost) {
  // Worm-hole routing: the alpha + n beta model is distance-insensitive.
  WormholeSimulator sim(Mesh2D(1, 32), unit_params());
  Schedule near;
  near.set_levels(0);
  near.add_transfer(0, 1, user(0, 64), user(0, 64));
  Schedule far;
  far.set_levels(0);
  far.add_transfer(0, 31, user(0, 64), user(0, 64));
  EXPECT_DOUBLE_EQ(sim.run(near).seconds, sim.run(far).seconds);
}

TEST(SimEngineTest, SequentialSendsSerialize) {
  // One-port model: a node's two sends cannot overlap.
  WormholeSimulator sim(Mesh2D(1, 4), unit_params());
  Schedule s;
  s.set_levels(0);
  s.add_transfer(0, 1, user(0, 50), user(0, 50));
  s.add_transfer(0, 2, user(0, 50), user(0, 50));
  EXPECT_DOUBLE_EQ(sim.run(s).seconds, 2 * (1.0 + 50.0));
}

TEST(SimEngineTest, DisjointTransfersRunConcurrently) {
  WormholeSimulator sim(Mesh2D(1, 4), unit_params());
  Schedule s;
  s.set_levels(0);
  s.add_transfer(0, 1, user(0, 50), user(0, 50));
  s.add_transfer(2, 3, user(0, 50), user(0, 50));
  const SimResult r = sim.run(s);
  EXPECT_DOUBLE_EQ(r.seconds, 1.0 + 50.0);
  EXPECT_EQ(r.peak_link_load, 1);
}

TEST(SimEngineTest, SharedLinkHalvesBandwidth) {
  // Two same-direction transfers over the middle link share its bandwidth.
  WormholeSimulator sim(Mesh2D(1, 4), unit_params());
  Schedule s;
  s.set_levels(0);
  s.add_transfer(0, 2, user(0, 100), user(0, 100));
  s.add_transfer(1, 3, user(100, 100), user(100, 100));
  const SimResult r = sim.run(s);
  EXPECT_DOUBLE_EQ(r.seconds, 1.0 + 200.0);
  EXPECT_EQ(r.peak_link_load, 2);
}

TEST(SimEngineTest, LinkCapacityAbsorbsSharing) {
  SimParams params = unit_params();
  params.machine.link_capacity = 2.0;  // Section 7.1 excess link bandwidth
  WormholeSimulator sim(Mesh2D(1, 4), params);
  Schedule s;
  s.set_levels(0);
  s.add_transfer(0, 2, user(0, 100), user(0, 100));
  s.add_transfer(1, 3, user(100, 100), user(100, 100));
  EXPECT_DOUBLE_EQ(sim.run(s).seconds, 1.0 + 100.0);
}

TEST(SimEngineTest, OppositeDirectionsDoNotConflict) {
  WormholeSimulator sim(Mesh2D(1, 4), unit_params());
  Schedule s;
  s.set_levels(0);
  // 0 -> 3 rightward and 3 -> 0 leftward simultaneously (full duplex).
  s.program(0).ops.push_back(Op::sendrecv(3, user(0, 80), 0, 3, user(80, 80), 1));
  s.program(3).ops.push_back(Op::sendrecv(0, user(80, 80), 1, 0, user(0, 80), 0));
  s.reserve_slice(0, user(0, 160));
  s.reserve_slice(3, user(0, 160));
  const SimResult r = sim.run(s);
  EXPECT_DOUBLE_EQ(r.seconds, 1.0 + 80.0);
  EXPECT_EQ(r.peak_link_load, 1);
}

TEST(SimEngineTest, RendezvousWaitsForLateReceiver) {
  // The receiver is busy combining before it posts the recv; the transfer
  // cannot start earlier.
  WormholeSimulator sim(Mesh2D(1, 2), unit_params());
  Schedule s;
  s.set_levels(0);
  s.reserve_slice(1, user(0, 100));
  s.reserve_slice(1, BufSlice{kScratchBuf, 0, 100});
  s.reserve_slice(0, user(0, 10));
  // Node 1 combines 100 bytes (gamma = 1 -> 100 s), then receives.
  s.program(1).ops.push_back(
      Op::combine(BufSlice{kScratchBuf, 0, 100}, user(0, 100)));
  s.program(1).ops.push_back(Op::recv(0, user(0, 10), 0));
  s.program(0).ops.push_back(Op::send(1, user(0, 10), 0));
  EXPECT_DOUBLE_EQ(sim.run(s).seconds, 100.0 + 1.0 + 10.0);
}

TEST(SimEngineTest, CombineCostsGammaPerByte) {
  SimParams params = unit_params();
  params.machine.gamma = 2.0;
  WormholeSimulator sim(Mesh2D(1, 1), params);
  Schedule s;
  s.set_levels(0);
  s.reserve_slice(0, user(0, 64));
  s.reserve_slice(0, BufSlice{kScratchBuf, 0, 32});
  s.program(0).ops.push_back(
      Op::combine(BufSlice{kScratchBuf, 0, 32}, user(0, 32)));
  EXPECT_DOUBLE_EQ(sim.run(s).seconds, 64.0);
}

TEST(SimEngineTest, PerLevelOverheadCharged) {
  SimParams params = unit_params();
  params.machine.per_level_overhead = 10.0;
  WormholeSimulator sim(Mesh2D(1, 2), params);
  Schedule s;
  s.set_levels(3);
  s.add_transfer(0, 1, user(0, 10), user(0, 10));
  EXPECT_DOUBLE_EQ(sim.run(s).seconds, (1.0 + 10.0) + 30.0);
}

TEST(SimEngineTest, JitterDelaysTransfers) {
  SimParams params = unit_params();
  params.jitter_mean = 5.0;
  params.jitter_seed = 99;
  WormholeSimulator jittery(Mesh2D(1, 2), params);
  WormholeSimulator clean(Mesh2D(1, 2), unit_params());
  Schedule s;
  s.set_levels(0);
  s.add_transfer(0, 1, user(0, 10), user(0, 10));
  EXPECT_GT(jittery.run(s).seconds, clean.run(s).seconds);
}

TEST(SimEngineTest, JitterIsDeterministicPerSeed) {
  SimParams params = unit_params();
  params.jitter_mean = 5.0;
  params.jitter_seed = 1234;
  WormholeSimulator sim(Mesh2D(1, 4), params);
  Schedule s;
  s.set_levels(0);
  s.add_transfer(0, 1, user(0, 10), user(0, 10));
  s.add_transfer(1, 2, user(0, 10), user(0, 10));
  EXPECT_DOUBLE_EQ(sim.run(s).seconds, sim.run(s).seconds);
}

TEST(SimEngineTest, DeadlockDetected) {
  WormholeSimulator sim(Mesh2D(1, 2), unit_params());
  Schedule s;
  s.reserve_slice(0, user(0, 8));
  s.program(0).ops.push_back(Op::send(1, user(0, 8), 0));  // no matching recv
  EXPECT_THROW(sim.run(s), Error);
}

TEST(SimEngineTest, NodeOutsideMeshRejected) {
  WormholeSimulator sim(Mesh2D(1, 2), unit_params());
  Schedule s;
  s.add_transfer(0, 5, user(0, 8), user(0, 8));
  EXPECT_THROW(sim.run(s), Error);
}

TEST(SimEngineTest, EmptyScheduleTakesNoTime) {
  WormholeSimulator sim(Mesh2D(2, 2), unit_params());
  Schedule s;
  s.set_levels(0);
  EXPECT_DOUBLE_EQ(sim.run(s).seconds, 0.0);
}

}  // namespace
}  // namespace intercom
