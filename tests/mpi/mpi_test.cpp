// MPI-like interface tests (paper Section 9): MPI-shaped semantics — distinct
// send/recv buffers, datatype/op dispatch, error codes, comm_split.
#include <gtest/gtest.h>

#include "intercom/mpi/mpi.hpp"
#include "intercom/util/error.hpp"

namespace intercom {
namespace {

TEST(MpiTest, BcastDouble) {
  Multicomputer mc(Mesh2D(1, 5));
  mc.run_spmd([&](Node& node) {
    mpi::Comm world = mpi::comm_world(node);
    std::vector<double> v(8, world.rank() == 2 ? 3.25 : 0.0);
    ASSERT_EQ(mpi::bcast(v.data(), v.size(), mpi::Datatype::kDouble, 2, world),
              mpi::kSuccess);
    ASSERT_DOUBLE_EQ(v[7], 3.25);
  });
}

TEST(MpiTest, ReduceKeepsSendBufferIntact) {
  Multicomputer mc(Mesh2D(1, 4));
  mc.run_spmd([&](Node& node) {
    mpi::Comm world = mpi::comm_world(node);
    std::vector<int> send(3, world.rank() + 1);
    std::vector<int> recv(3, -1);
    ASSERT_EQ(mpi::reduce(send.data(), recv.data(), 3, mpi::Datatype::kInt,
                          mpi::ReduceKind::kSum, 0, world),
              mpi::kSuccess);
    // Send buffer untouched (distinct-buffer MPI semantics).
    ASSERT_EQ(send[0], world.rank() + 1);
    if (world.rank() == 0) {
      ASSERT_EQ(recv[0], 10);
    } else {
      ASSERT_EQ(recv[0], -1);  // only significant at root
    }
  });
}

TEST(MpiTest, AllreduceOps) {
  Multicomputer mc(Mesh2D(1, 4));
  mc.run_spmd([&](Node& node) {
    mpi::Comm world = mpi::comm_world(node);
    const double mine = world.rank() + 1.0;
    double sum = 0.0;
    double prod = 0.0;
    double hi = 0.0;
    double lo = 0.0;
    mpi::allreduce(&mine, &sum, 1, mpi::Datatype::kDouble,
                   mpi::ReduceKind::kSum, world);
    mpi::allreduce(&mine, &prod, 1, mpi::Datatype::kDouble,
                   mpi::ReduceKind::kProd, world);
    mpi::allreduce(&mine, &hi, 1, mpi::Datatype::kDouble,
                   mpi::ReduceKind::kMax, world);
    mpi::allreduce(&mine, &lo, 1, mpi::Datatype::kDouble,
                   mpi::ReduceKind::kMin, world);
    ASSERT_DOUBLE_EQ(sum, 10.0);
    ASSERT_DOUBLE_EQ(prod, 24.0);
    ASSERT_DOUBLE_EQ(hi, 4.0);
    ASSERT_DOUBLE_EQ(lo, 1.0);
  });
}

TEST(MpiTest, ScatterGatherRoundTrip) {
  Multicomputer mc(Mesh2D(1, 4));
  mc.run_spmd([&](Node& node) {
    mpi::Comm world = mpi::comm_world(node);
    std::vector<int> send;
    if (world.rank() == 1) {
      for (int i = 0; i < 12; ++i) send.push_back(100 + i);
    }
    std::vector<int> mine(3, -1);
    ASSERT_EQ(mpi::scatter(send.data(), 3, mine.data(), 1, mpi::Datatype::kInt,
                           world),
              mpi::kSuccess);
    ASSERT_EQ(mine[0], 100 + world.rank() * 3);
    for (int& v : mine) v += 1000;
    std::vector<int> out(world.rank() == 1 ? 12 : 0);
    ASSERT_EQ(mpi::gather(mine.data(), 3, out.data(), 1, mpi::Datatype::kInt,
                          world),
              mpi::kSuccess);
    if (world.rank() == 1) {
      for (int i = 0; i < 12; ++i) ASSERT_EQ(out[static_cast<std::size_t>(i)], 1100 + i);
    }
  });
}

TEST(MpiTest, Allgather) {
  Multicomputer mc(Mesh2D(1, 6));
  mc.run_spmd([&](Node& node) {
    mpi::Comm world = mpi::comm_world(node);
    const long long mine = 7ll * world.rank();
    std::vector<long long> all(6, -1);
    ASSERT_EQ(mpi::allgather(&mine, 1, all.data(), mpi::Datatype::kLongLong,
                             world),
              mpi::kSuccess);
    for (int r = 0; r < 6; ++r) ASSERT_EQ(all[static_cast<std::size_t>(r)], 7ll * r);
  });
}

TEST(MpiTest, ReduceScatterWithUnevenCounts) {
  Multicomputer mc(Mesh2D(1, 3));
  mc.run_spmd([&](Node& node) {
    mpi::Comm world = mpi::comm_world(node);
    const std::vector<std::size_t> counts{1, 2, 3};
    std::vector<float> send(6);
    for (int i = 0; i < 6; ++i) {
      send[static_cast<std::size_t>(i)] =
          static_cast<float>((world.rank() + 1) * (i + 1));
    }
    std::vector<float> recv(counts[static_cast<std::size_t>(world.rank())],
                            -1.0f);
    ASSERT_EQ(mpi::reduce_scatter(send.data(), recv.data(), counts,
                                  mpi::Datatype::kFloat, mpi::ReduceKind::kSum,
                                  world),
              mpi::kSuccess);
    // Sum over ranks of (r+1)*(i+1) = 6*(i+1).
    std::size_t base = 0;
    for (int r = 0; r < world.rank(); ++r) base += counts[static_cast<std::size_t>(r)];
    for (std::size_t k = 0; k < recv.size(); ++k) {
      ASSERT_FLOAT_EQ(recv[k], 6.0f * static_cast<float>(base + k + 1));
    }
  });
}

TEST(MpiTest, CommSplitByParity) {
  Multicomputer mc(Mesh2D(1, 6));
  mc.run_spmd([&](Node& node) {
    mpi::Comm world = mpi::comm_world(node);
    const int color = world.rank() % 2;
    // Reverse ordering within the evens via descending keys.
    const int key = color == 0 ? -world.rank() : world.rank();
    auto sub = mpi::comm_split(node, world, color, key);
    ASSERT_TRUE(sub.has_value());
    ASSERT_EQ(sub->size(), 3);
    if (color == 0) {
      // Members 0, 2, 4 sorted by key -rank: 4, 2, 0.
      ASSERT_EQ(sub->communicator().group().members(),
                (std::vector<int>{4, 2, 0}));
    } else {
      ASSERT_EQ(sub->communicator().group().members(),
                (std::vector<int>{1, 3, 5}));
    }
    // The sub-communicator works: sum ranks' node ids.
    double v = node.id();
    double total = 0.0;
    mpi::allreduce(&v, &total, 1, mpi::Datatype::kDouble,
                   mpi::ReduceKind::kSum, *sub);
    ASSERT_DOUBLE_EQ(total, color == 0 ? 6.0 : 9.0);
  });
}

TEST(MpiTest, CommSplitUndefinedColor) {
  Multicomputer mc(Mesh2D(1, 4));
  mc.run_spmd([&](Node& node) {
    mpi::Comm world = mpi::comm_world(node);
    const int color = world.rank() == 3 ? -1 : 0;
    auto sub = mpi::comm_split(node, world, color, 0);
    if (world.rank() == 3) {
      ASSERT_FALSE(sub.has_value());
    } else {
      ASSERT_TRUE(sub.has_value());
      ASSERT_EQ(sub->size(), 3);
    }
  });
}

TEST(MpiTest, ErrorCodes) {
  Multicomputer mc(Mesh2D(1, 2));
  mc.run_spmd([&](Node& node) {
    mpi::Comm world = mpi::comm_world(node);
    double v = 0.0;
    ASSERT_EQ(mpi::bcast(nullptr, 4, mpi::Datatype::kDouble, 0, world),
              mpi::kErrArg);
    ASSERT_EQ(mpi::bcast(&v, 1, mpi::Datatype::kDouble, 9, world),
              mpi::kErrArg);
    ASSERT_EQ(mpi::reduce(&v, nullptr, 1, mpi::Datatype::kDouble,
                          mpi::ReduceKind::kSum, 0, world),
              mpi::kErrArg);
    // Zero-count operations succeed trivially.
    ASSERT_EQ(mpi::bcast(nullptr, 0, mpi::Datatype::kDouble, 0, world),
              mpi::kSuccess);
  });
}

TEST(MpiTest, DatatypeSizes) {
  EXPECT_EQ(mpi::datatype_size(mpi::Datatype::kByte), 1u);
  EXPECT_EQ(mpi::datatype_size(mpi::Datatype::kInt), sizeof(int));
  EXPECT_EQ(mpi::datatype_size(mpi::Datatype::kDouble), sizeof(double));
  EXPECT_EQ(mpi::datatype_size(mpi::Datatype::kFloat), sizeof(float));
  EXPECT_EQ(mpi::datatype_size(mpi::Datatype::kLongLong), sizeof(long long));
}

TEST(MpiTest, BarrierRuns) {
  Multicomputer mc(Mesh2D(1, 3));
  mc.run_spmd([&](Node& node) {
    mpi::Comm world = mpi::comm_world(node);
    ASSERT_EQ(mpi::barrier(world), mpi::kSuccess);
  });
}

}  // namespace
}  // namespace intercom
