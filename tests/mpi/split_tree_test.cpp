// MPI comm_split stress: random recursive split trees — every node keeps
// splitting its current communicator by random colors/keys and running a
// collective at every level.  Exercises group creation, context isolation,
// and the collectv-based split agreement under heavy concurrency.
#include <gtest/gtest.h>

#include "intercom/mpi/mpi.hpp"
#include "intercom/util/rng.hpp"

namespace intercom {
namespace {

TEST(MpiSplitTreeTest, RecursiveRandomSplits) {
  Multicomputer mc(Mesh2D(2, 6));
  mc.run_spmd([&](Node& node) {
    mpi::Comm comm = mpi::comm_world(node);
    // Same seed everywhere: every member draws identical split decisions
    // for its rank, so the trees agree without communication.
    for (int level = 0; level < 4; ++level) {
      // Collective sanity check at this level: the sum of ones equals the
      // communicator size.
      double one = 1.0;
      double total = 0.0;
      ASSERT_EQ(mpi::allreduce(&one, &total, 1, mpi::Datatype::kDouble,
                               mpi::ReduceKind::kSum, comm),
                mpi::kSuccess);
      ASSERT_DOUBLE_EQ(total, static_cast<double>(comm.size()));
      if (comm.size() == 1) break;
      // Deterministic pseudo-random color from (level, rank) — the same
      // function on every node.
      Rng rng(static_cast<std::uint64_t>(level) * 1000003u +
              static_cast<std::uint64_t>(comm.rank()));
      const int color = static_cast<int>(rng.next_u64() % 2);
      const int key = static_cast<int>(rng.next_u64() % 7);
      auto sub = mpi::comm_split(node, comm, color, key);
      ASSERT_TRUE(sub.has_value());
      comm = std::move(*sub);
    }
  });
}

TEST(MpiSplitTreeTest, SplitPreservesKeyOrdering) {
  Multicomputer mc(Mesh2D(1, 6));
  mc.run_spmd([&](Node& node) {
    mpi::Comm world = mpi::comm_world(node);
    // All same color; keys reverse the rank order.
    auto sub = mpi::comm_split(node, world, 7, -world.rank());
    ASSERT_TRUE(sub.has_value());
    ASSERT_EQ(sub->rank(), 5 - world.rank());
    // Broadcast from new rank 0 (= old rank 5).
    int v = world.rank() == 5 ? 1234 : 0;
    ASSERT_EQ(mpi::bcast(&v, 1, mpi::Datatype::kInt, 0, *sub),
              mpi::kSuccess);
    ASSERT_EQ(v, 1234);
  });
}

TEST(MpiSplitTreeTest, SiblingCommunicatorsIsolated) {
  // Two sibling communicators from one split run interleaved collectives;
  // their traffic must not mix.
  Multicomputer mc(Mesh2D(1, 8));
  mc.run_spmd([&](Node& node) {
    mpi::Comm world = mpi::comm_world(node);
    auto sub = mpi::comm_split(node, world, node.id() % 2, node.id());
    ASSERT_TRUE(sub.has_value());
    for (int round = 0; round < 5; ++round) {
      long long mine = node.id() % 2 == 0 ? 1 : 100;
      long long total = 0;
      ASSERT_EQ(mpi::allreduce(&mine, &total, 1, mpi::Datatype::kLongLong,
                               mpi::ReduceKind::kSum, *sub),
                mpi::kSuccess);
      ASSERT_EQ(total, node.id() % 2 == 0 ? 4 : 400);
    }
  });
}

}  // namespace
}  // namespace intercom
