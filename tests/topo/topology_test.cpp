#include "intercom/topo/topology.hpp"

#include <gtest/gtest.h>

#include <set>

#include "intercom/util/error.hpp"

namespace intercom {
namespace {

TEST(MeshTopologyTest, MatchesMesh2D) {
  Mesh2D mesh(3, 4);
  MeshTopology topo(mesh);
  EXPECT_EQ(topo.node_count(), 12);
  EXPECT_EQ(topo.directed_link_count(), mesh.directed_link_count());
  EXPECT_EQ(topo.route(0, 11).size(), static_cast<std::size_t>(mesh.distance(0, 11)));
  EXPECT_TRUE(topo.route(5, 5).empty());
}

TEST(HypercubeTest, BasicShape) {
  Hypercube cube(4);
  EXPECT_EQ(cube.dims(), 4);
  EXPECT_EQ(cube.node_count(), 16);
  EXPECT_EQ(cube.directed_link_count(), 16 * 4);
}

TEST(HypercubeTest, ZeroDimensionalCube) {
  Hypercube cube(0);
  EXPECT_EQ(cube.node_count(), 1);
  EXPECT_EQ(cube.directed_link_count(), 0);
  EXPECT_TRUE(cube.route(0, 0).empty());
}

TEST(HypercubeTest, NeighborsFlipOneBit) {
  Hypercube cube(3);
  EXPECT_EQ(cube.neighbor(0b000, 0), 0b001);
  EXPECT_EQ(cube.neighbor(0b000, 2), 0b100);
  EXPECT_EQ(cube.neighbor(0b101, 1), 0b111);
  EXPECT_THROW(cube.neighbor(0, 3), Error);
  EXPECT_THROW(cube.neighbor(8, 0), Error);
}

TEST(HypercubeTest, RouteLengthIsHammingDistance) {
  Hypercube cube(5);
  auto popcount = [](int v) {
    int c = 0;
    while (v) {
      c += v & 1;
      v >>= 1;
    }
    return c;
  };
  for (int s = 0; s < 32; s += 5) {
    for (int d = 0; d < 32; d += 3) {
      EXPECT_EQ(static_cast<int>(cube.route(s, d).size()), popcount(s ^ d));
    }
  }
}

TEST(HypercubeTest, EcubeRoutingIsAscending) {
  Hypercube cube(3);
  // 000 -> 111 resolves dimension 0, then 1, then 2.
  const auto route = cube.route(0b000, 0b111);
  ASSERT_EQ(route.size(), 3u);
  EXPECT_EQ(route[0], cube.link_index(0b000, 0));
  EXPECT_EQ(route[1], cube.link_index(0b001, 1));
  EXPECT_EQ(route[2], cube.link_index(0b011, 2));
}

TEST(HypercubeTest, LinkIndicesDenseAndUnique) {
  Hypercube cube(3);
  std::set<int> seen;
  for (int node = 0; node < 8; ++node) {
    for (int dim = 0; dim < 3; ++dim) {
      seen.insert(cube.link_index(node, dim));
    }
  }
  EXPECT_EQ(static_cast<int>(seen.size()), cube.directed_link_count());
  EXPECT_EQ(*seen.begin(), 0);
  EXPECT_EQ(*seen.rbegin(), cube.directed_link_count() - 1);
}

TEST(HypercubeTest, GrayRingIsHamiltonianOverLinks) {
  Hypercube cube(4);
  const auto ring = cube.gray_ring();
  ASSERT_EQ(ring.size(), 16u);
  std::set<int> visited(ring.begin(), ring.end());
  EXPECT_EQ(visited.size(), 16u);  // visits every node once
  for (std::size_t i = 0; i < ring.size(); ++i) {
    const int a = ring[i];
    const int b = ring[(i + 1) % ring.size()];
    const int diff = a ^ b;
    EXPECT_EQ(diff & (diff - 1), 0) << "hop " << i << " is not a cube edge";
    EXPECT_NE(diff, 0);
  }
}

TEST(HypercubeTest, GrayRingHopsAreEdgeDisjoint) {
  Hypercube cube(4);
  const auto ring = cube.gray_ring();
  std::set<int> used;
  for (std::size_t i = 0; i + 1 < ring.size(); ++i) {
    const auto links = cube.route(ring[i], ring[i + 1]);
    ASSERT_EQ(links.size(), 1u);
    EXPECT_TRUE(used.insert(links[0]).second) << "hop " << i << " reuses a channel";
  }
}

TEST(HypercubeTest, RejectsBadDims) {
  EXPECT_THROW(Hypercube(-1), Error);
  EXPECT_THROW(Hypercube(21), Error);
}

}  // namespace
}  // namespace intercom
