#include <gtest/gtest.h>

#include <set>

#include "intercom/core/primitives.hpp"
#include "intercom/sim/engine.hpp"
#include "intercom/topo/topology.hpp"
#include "intercom/util/error.hpp"

namespace intercom {
namespace {

TEST(TorusTest, BasicShape) {
  Torus2D t(4, 6);
  EXPECT_EQ(t.node_count(), 24);
  EXPECT_EQ(t.directed_link_count(), 24 * 4);
  EXPECT_THROW(Torus2D(0, 3), Error);
}

TEST(TorusTest, ShortestWayAroundHorizontally) {
  Torus2D t(1, 10);
  // 0 -> 3: east, 3 hops.
  EXPECT_EQ(t.route(0, 3).size(), 3u);
  // 0 -> 8: west around the wrap, 2 hops.
  EXPECT_EQ(t.route(0, 8).size(), 2u);
  // Half way: either way is 5 hops.
  EXPECT_EQ(t.route(0, 5).size(), 5u);
}

TEST(TorusTest, ShortestWayAroundVertically) {
  Torus2D t(8, 1);
  EXPECT_EQ(t.route(0, 6 * 1).size(), 2u);  // north around the wrap
  EXPECT_EQ(t.route(0, 2 * 1).size(), 2u);  // south
}

TEST(TorusTest, TwoDimensionalRoute) {
  Torus2D t(4, 4);
  // (0,0) -> (3,3): 1 west (wrap) + 1 north (wrap) = 2 hops.
  EXPECT_EQ(t.route(0, 15).size(), 2u);
}

TEST(TorusTest, RouteEmptyForSelf) {
  Torus2D t(3, 3);
  EXPECT_TRUE(t.route(4, 4).empty());
}

TEST(TorusTest, OppositeDirectionsUseDistinctChannels) {
  Torus2D t(1, 6);
  const auto east = t.route(0, 2);
  const auto west = t.route(2, 0);
  std::set<int> e(east.begin(), east.end());
  for (int id : west) EXPECT_EQ(e.count(id), 0u);
}

TEST(TorusTest, RingCollectUsesWrapLinkWithoutConflict) {
  // On a torus the bucket ring's wrap message is a single physical link, so
  // the whole ring is conflict-free and each step costs one bucket.
  const int p = 8;
  auto torus = std::make_shared<Torus2D>(1, p);
  SimParams params;
  params.machine = MachineParams::unit();
  WormholeSimulator sim(torus, params);
  Schedule s;
  planner::Ctx ctx{s, 1};
  planner::bucket_collect(ctx, Group::contiguous(p), ElemRange{0, 8 * 32});
  s.set_levels(0);
  const SimResult r = sim.run(s);
  EXPECT_EQ(r.peak_link_load, 1);
  EXPECT_DOUBLE_EQ(r.seconds, (p - 1) * (1.0 + 32.0));
}

TEST(TorusTest, MstBroadcastRunsOnTorus) {
  auto torus = std::make_shared<Torus2D>(4, 4);
  SimParams params;
  params.machine = MachineParams::unit();
  WormholeSimulator sim(torus, params);
  Schedule s;
  planner::Ctx ctx{s, 1};
  planner::mst_broadcast(ctx, Group::contiguous(16), ElemRange{0, 64}, 0);
  s.set_levels(0);
  EXPECT_DOUBLE_EQ(sim.run(s).seconds, 4 * (1.0 + 64.0));
}

}  // namespace
}  // namespace intercom
