#include "intercom/topo/submesh.hpp"

#include <gtest/gtest.h>

namespace intercom {
namespace {

TEST(SubmeshTest, RowAndColumnGroups) {
  Mesh2D mesh(3, 4);
  EXPECT_EQ(row_group(mesh, 1).members(), (std::vector<int>{4, 5, 6, 7}));
  EXPECT_EQ(col_group(mesh, 2).members(), (std::vector<int>{2, 6, 10}));
  EXPECT_EQ(whole_mesh_group(mesh).size(), 12);
}

TEST(SubmeshTest, SingletonDetected) {
  Mesh2D mesh(4, 4);
  EXPECT_EQ(analyze_group(mesh, Group({5})).structure,
            GroupStructure::kSingleton);
}

TEST(SubmeshTest, PhysicalRowDetected) {
  Mesh2D mesh(4, 6);
  const auto layout = analyze_group(mesh, Group({13, 14, 15, 16}));
  EXPECT_EQ(layout.structure, GroupStructure::kPhysicalRow);
  ASSERT_TRUE(layout.submesh.has_value());
  EXPECT_EQ(layout.submesh->row0, 2);
  EXPECT_EQ(layout.submesh->col0, 1);
  EXPECT_EQ(layout.submesh->cols, 4);
}

TEST(SubmeshTest, PhysicalColumnDetected) {
  Mesh2D mesh(4, 6);
  const auto layout = analyze_group(mesh, Group({3, 9, 15, 21}));
  EXPECT_EQ(layout.structure, GroupStructure::kPhysicalColumn);
  ASSERT_TRUE(layout.submesh.has_value());
  EXPECT_EQ(layout.submesh->rows, 4);
  EXPECT_EQ(layout.submesh->cols, 1);
}

TEST(SubmeshTest, RectangularSubmeshDetected) {
  Mesh2D mesh(4, 6);
  // Rows 1-2, cols 2-4 in row-major order.
  Group g({8, 9, 10, 14, 15, 16});
  const auto layout = analyze_group(mesh, g);
  EXPECT_EQ(layout.structure, GroupStructure::kRectSubmesh);
  ASSERT_TRUE(layout.submesh.has_value());
  EXPECT_EQ(layout.submesh->row0, 1);
  EXPECT_EQ(layout.submesh->col0, 2);
  EXPECT_EQ(layout.submesh->rows, 2);
  EXPECT_EQ(layout.submesh->cols, 3);
}

TEST(SubmeshTest, WholeMeshIsRectSubmesh) {
  Mesh2D mesh(16, 32);
  const auto layout = analyze_group(mesh, whole_mesh_group(mesh));
  EXPECT_EQ(layout.structure, GroupStructure::kRectSubmesh);
  EXPECT_EQ(layout.submesh->rows, 16);
  EXPECT_EQ(layout.submesh->cols, 32);
}

TEST(SubmeshTest, WrongOrderIsUnstructured) {
  Mesh2D mesh(4, 6);
  // Same members as the rectangle above, but column-major enumeration: the
  // row/column techniques would not apply, so it must be kUnstructured.
  Group g({8, 14, 9, 15, 10, 16});
  EXPECT_EQ(analyze_group(mesh, g).structure, GroupStructure::kUnstructured);
}

TEST(SubmeshTest, HolesAreUnstructured) {
  Mesh2D mesh(4, 6);
  Group g({8, 9, 10, 14, 15});  // missing 16
  EXPECT_EQ(analyze_group(mesh, g).structure, GroupStructure::kUnstructured);
}

TEST(SubmeshTest, ScatteredGroupIsUnstructured) {
  Mesh2D mesh(4, 6);
  Group g({0, 7, 21});
  EXPECT_EQ(analyze_group(mesh, g).structure, GroupStructure::kUnstructured);
}

TEST(SubmeshTest, OutOfMeshNodesAreUnstructured) {
  Mesh2D mesh(2, 2);
  Group g({0, 1, 2, 5});
  EXPECT_EQ(analyze_group(mesh, g).structure, GroupStructure::kUnstructured);
}

}  // namespace
}  // namespace intercom
