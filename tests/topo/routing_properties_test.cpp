// Cross-topology routing properties: every Topology the simulator can price
// schedules against must produce routes that are in-bounds, loop-free, and
// minimal, and each family's canonical routing discipline must hold (the
// deadlock-freedom arguments rest on those disciplines).
#include <gtest/gtest.h>

#include <cctype>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "intercom/topo/dragonfly.hpp"
#include "intercom/topo/fattree.hpp"
#include "intercom/topo/topology.hpp"

namespace intercom {
namespace {

std::vector<std::shared_ptr<const Topology>> topologies_under_test() {
  return {
      std::make_shared<MeshTopology>(Mesh2D(4, 5)),
      std::make_shared<MeshTopology>(Mesh2D(1, 16)),
      std::make_shared<Torus2D>(4, 5),
      std::make_shared<Torus2D>(1, 7),
      std::make_shared<Hypercube>(4),
      std::make_shared<FatTree>(2, 3),
      std::make_shared<FatTree>(3, 2),
      std::make_shared<Dragonfly>(2, 2, 1),
      std::make_shared<Dragonfly>(2, 2, 2),
  };
}

class RoutingPropertyTest
    : public ::testing::TestWithParam<std::shared_ptr<const Topology>> {};

TEST_P(RoutingPropertyTest, RoutesAreInBoundsLoopFreeAndMinimal) {
  const Topology& t = *GetParam();
  const int n = t.node_count();
  const int links = t.directed_link_count();
  for (int src = 0; src < n; ++src) {
    for (int dst = 0; dst < n; ++dst) {
      const auto route = t.route(src, dst);
      if (src == dst) {
        EXPECT_TRUE(route.empty()) << t.label();
        continue;
      }
      // Minimal: the canonical route realizes the shortest-path length.
      EXPECT_EQ(route.size(), static_cast<std::size_t>(t.min_hops(src, dst)))
          << t.label() << " src=" << src << " dst=" << dst;
      // In-bounds and loop-free: a channel repeated within one route would
      // mean the worm crosses itself.
      std::set<int> seen;
      for (int link : route) {
        EXPECT_GE(link, 0) << t.label();
        EXPECT_LT(link, links) << t.label();
        EXPECT_TRUE(seen.insert(link).second)
            << t.label() << ": channel " << link << " repeated on route "
            << src << "->" << dst;
      }
    }
  }
}

TEST_P(RoutingPropertyTest, RoutingIsDeterministic) {
  const Topology& t = *GetParam();
  const int n = t.node_count();
  for (int src = 0; src < n; ++src) {
    for (int dst = 0; dst < n; ++dst) {
      EXPECT_EQ(t.route(src, dst), t.route(src, dst)) << t.label();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Topologies, RoutingPropertyTest,
    ::testing::ValuesIn(topologies_under_test()),
    [](const ::testing::TestParamInfo<std::shared_ptr<const Topology>>& info) {
      std::string label = info.param->label();
      for (char& c : label) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return label;
    });

// Dimension-order (XY) routing on mesh and torus: the route resolves the
// column dimension completely before the row dimension, i.e. it passes
// through the corner node (src_row, dst_col) and equals the concatenation of
// the two one-dimensional legs.  Dimension-order is the classic
// deadlock-freedom argument for meshes: no channel dependency can turn from
// row back to column.
template <typename Topo>
void expect_dimension_order(const Topo& t, int cols) {
  const int n = t.node_count();
  for (int src = 0; src < n; ++src) {
    for (int dst = 0; dst < n; ++dst) {
      const int corner = (src / cols) * cols + (dst % cols);
      auto expected = t.route(src, corner);
      const auto second = t.route(corner, dst);
      expected.insert(expected.end(), second.begin(), second.end());
      EXPECT_EQ(t.route(src, dst), expected)
          << t.label() << " src=" << src << " dst=" << dst;
    }
  }
}

TEST(DimensionOrderTest, MeshRoutesColumnFirst) {
  expect_dimension_order(MeshTopology(Mesh2D(4, 5)), 5);
}

TEST(DimensionOrderTest, TorusRoutesColumnFirst) {
  expect_dimension_order(Torus2D(4, 5), 5);
}

// E-cube on the hypercube: differing address bits are resolved in ascending
// dimension order (the hypercube's dimension-order discipline).
TEST(DimensionOrderTest, HypercubeResolvesBitsAscending) {
  Hypercube h(4);
  for (int src = 0; src < h.node_count(); ++src) {
    for (int dst = 0; dst < h.node_count(); ++dst) {
      int at = src;
      int last_dim = -1;
      for (int link : h.route(src, dst)) {
        const int node = link / h.dims();
        const int dim = link % h.dims();
        EXPECT_EQ(node, at);
        EXPECT_GT(dim, last_dim);
        last_dim = dim;
        at = h.neighbor(at, dim);
      }
      EXPECT_EQ(at, dst);
    }
  }
}

// Up/down routing on the fat-tree: every route crosses all of its up
// channels strictly before any down channel — the standard acyclicity
// argument for up*/down* fabrics.
TEST(UpDownTest, FatTreeNeverTurnsBackUp) {
  FatTree t(2, 3);
  const int n = t.node_count();
  for (int src = 0; src < n; ++src) {
    for (int dst = 0; dst < n; ++dst) {
      bool descending = false;
      for (int link : t.route(src, dst)) {
        const auto kind = t.link_kind(link);
        const bool down = kind == FatTree::LinkKind::kDown ||
                          kind == FatTree::LinkKind::kHostDown;
        if (down) descending = true;
        EXPECT_FALSE(descending && !down)
            << "route " << src << "->" << dst << " climbed after descending";
      }
    }
  }
}

// Minimal dragonfly routing follows the local-global-local pattern: any
// local hops after the single global hop stay in the destination group, so
// the channel dependency chain host-up -> local -> global -> local ->
// host-down never cycles.
TEST(UpDownTest, DragonflyFollowsLocalGlobalLocal) {
  Dragonfly d(3, 2, 2);
  const int n = d.node_count();
  for (int src = 0; src < n; ++src) {
    for (int dst = 0; dst < n; ++dst) {
      int stage = 0;  // 0=host-up, 1=local, 2=global, 3=local, 4=host-down
      for (int link : d.route(src, dst)) {
        int next = 0;
        switch (d.link_kind(link)) {
          case Dragonfly::LinkKind::kHostUp: next = 0; break;
          case Dragonfly::LinkKind::kLocal: next = stage <= 1 ? 1 : 3; break;
          case Dragonfly::LinkKind::kGlobal: next = 2; break;
          case Dragonfly::LinkKind::kHostDown: next = 4; break;
        }
        EXPECT_GE(next, stage) << "route " << src << "->" << dst
                               << " violated local-global-local order";
        stage = next;
      }
    }
  }
}

}  // namespace
}  // namespace intercom
