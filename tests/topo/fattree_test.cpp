// Fat-tree construction and up/down routing.
#include "intercom/topo/fattree.hpp"

#include <gtest/gtest.h>

#include "intercom/util/error.hpp"

namespace intercom {
namespace {

TEST(FatTreeTest, ShapeAndLabel) {
  FatTree t(2, 3);
  EXPECT_EQ(t.node_count(), 8);
  EXPECT_EQ(t.directed_link_count(), 2 * 8 * 3);
  EXPECT_EQ(t.name(), "fattree");
  EXPECT_EQ(t.label(), "fattree2L3");
}

TEST(FatTreeTest, MultiplicityDoublesTowardTheRoot) {
  // Leiserson fat channels: the link from a level-l switch up to its parent
  // is arity^(levels - l) parallel channels.
  FatTree t(2, 3);
  EXPECT_EQ(t.multiplicity(2), 2);  // leaf switches
  EXPECT_EQ(t.multiplicity(1), 4);  // one level up
}

TEST(FatTreeTest, SameLeafPairUsesTwoHops) {
  FatTree t(2, 3);
  // Hosts 0 and 1 share a leaf switch: host-up then host-down.
  const auto route = t.route(0, 1);
  ASSERT_EQ(route.size(), 2u);
  EXPECT_EQ(t.link_kind(route[0]), FatTree::LinkKind::kHostUp);
  EXPECT_EQ(t.link_kind(route[1]), FatTree::LinkKind::kHostDown);
  EXPECT_EQ(t.min_hops(0, 1), 2);
}

TEST(FatTreeTest, CrossTreeRouteClimbsToTheRootAndBack) {
  FatTree t(2, 3);
  // Hosts 0 and 7 only share the root: 3 hops up, 3 down.
  const auto route = t.route(0, 7);
  ASSERT_EQ(route.size(), 6u);
  EXPECT_EQ(t.min_hops(0, 7), 6);
  EXPECT_EQ(t.link_kind(route[0]), FatTree::LinkKind::kHostUp);
  EXPECT_EQ(t.link_kind(route[1]), FatTree::LinkKind::kUp);
  EXPECT_EQ(t.link_kind(route[2]), FatTree::LinkKind::kUp);
  EXPECT_EQ(t.link_kind(route[3]), FatTree::LinkKind::kDown);
  EXPECT_EQ(t.link_kind(route[4]), FatTree::LinkKind::kDown);
  EXPECT_EQ(t.link_kind(route[5]), FatTree::LinkKind::kHostDown);
}

TEST(FatTreeTest, SelfRouteIsEmpty) {
  FatTree t(2, 2);
  EXPECT_TRUE(t.route(3, 3).empty());
  EXPECT_EQ(t.min_hops(3, 3), 0);
}

TEST(FatTreeTest, DmodKSpreadsSiblingFlowsOverParallelChannels) {
  // Two sources under one leaf switch sending into the same remote subtree
  // must take distinct up channels (src mod m slot selection).
  FatTree t(2, 3);
  const auto a = t.route(0, 7);
  const auto b = t.route(1, 7);
  ASSERT_EQ(a.size(), 6u);
  ASSERT_EQ(b.size(), 6u);
  EXPECT_NE(a[1], b[1]);  // first switch-level up hop differs
  // Same destination: the down path is dst-chosen, hence shared.
  EXPECT_EQ(a[3], b[3]);
  EXPECT_EQ(a[5], b[5]);
}

TEST(FatTreeTest, RejectsOutOfDomainShapes) {
  EXPECT_THROW(FatTree(1, 3), ConfigError);
  EXPECT_THROW(FatTree(2, 0), ConfigError);
  EXPECT_THROW(FatTree(2, 30), ConfigError);  // 2^30 hosts > the 2^22 cap
}

}  // namespace
}  // namespace intercom
