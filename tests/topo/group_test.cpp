#include "intercom/topo/group.hpp"

#include <gtest/gtest.h>

#include "intercom/util/error.hpp"

namespace intercom {
namespace {

TEST(GroupTest, ContiguousNumbersRanks) {
  Group g = Group::contiguous(5);
  EXPECT_EQ(g.size(), 5);
  for (int r = 0; r < 5; ++r) EXPECT_EQ(g.physical(r), r);
}

TEST(GroupTest, StridedMapping) {
  Group g = Group::strided(3, 4, 4);
  EXPECT_EQ(g.members(), (std::vector<int>{3, 7, 11, 15}));
  EXPECT_EQ(g.rank_of(11), 2);
  EXPECT_EQ(g.rank_of(4), -1);
  EXPECT_TRUE(g.contains(15));
  EXPECT_FALSE(g.contains(16));
}

TEST(GroupTest, ExplicitMembersProvideLogicalToPhysicalMap) {
  // The paper's mechanism: "using the group array to provide the
  // logical-to-physical mapping".
  Group g({9, 2, 5});
  EXPECT_EQ(g.physical(0), 9);
  EXPECT_EQ(g.physical(1), 2);
  EXPECT_EQ(g.physical(2), 5);
  EXPECT_EQ(g.rank_of(5), 2);
}

TEST(GroupTest, RejectsDuplicatesAndNegatives) {
  EXPECT_THROW(Group({1, 2, 1}), Error);
  EXPECT_THROW(Group({0, -1}), Error);
  EXPECT_THROW(Group(std::vector<int>{}), Error);
}

TEST(GroupTest, PhysicalRejectsBadRank) {
  Group g = Group::contiguous(3);
  EXPECT_THROW(g.physical(3), Error);
  EXPECT_THROW(g.physical(-1), Error);
}

TEST(GroupTest, SliceSelectsStridedSubgroup) {
  Group g = Group::contiguous(12);
  // Logical 2 x 6: column 1 is ranks {1, 3, 5, 7, 9, 11}.
  Group col = g.slice(1, 2, 6);
  EXPECT_EQ(col.members(), (std::vector<int>{1, 3, 5, 7, 9, 11}));
  // Row 2 is ranks {4, 5}.
  Group row = g.slice(4, 1, 2);
  EXPECT_EQ(row.members(), (std::vector<int>{4, 5}));
}

TEST(GroupTest, SliceOfStridedGroupComposes) {
  Group g = Group::strided(100, 10, 8);  // 100,110,...,170
  Group sub = g.slice(1, 3, 2);          // ranks 1 and 4 -> 110, 140
  EXPECT_EQ(sub.members(), (std::vector<int>{110, 140}));
}

TEST(GroupTest, SliceBoundsChecked) {
  Group g = Group::contiguous(6);
  EXPECT_THROW(g.slice(0, 2, 4), Error);  // rank 6 out of bounds
  EXPECT_THROW(g.slice(-1, 1, 2), Error);
  EXPECT_THROW(g.slice(0, 0, 2), Error);
}

}  // namespace
}  // namespace intercom
