#include "intercom/topo/mesh.hpp"

#include <gtest/gtest.h>

#include <set>

#include "intercom/util/error.hpp"

namespace intercom {
namespace {

TEST(Mesh2DTest, CoordinateRoundTrip) {
  Mesh2D mesh(4, 5);
  EXPECT_EQ(mesh.node_count(), 20);
  for (int node = 0; node < mesh.node_count(); ++node) {
    EXPECT_EQ(mesh.node_at(mesh.coord_of(node)), node);
  }
  EXPECT_EQ(mesh.coord_of(0), (Coord{0, 0}));
  EXPECT_EQ(mesh.coord_of(7), (Coord{1, 2}));
  EXPECT_EQ(mesh.node_at(3, 4), 19);
}

TEST(Mesh2DTest, RejectsBadInputs) {
  EXPECT_THROW(Mesh2D(0, 3), Error);
  Mesh2D mesh(2, 2);
  EXPECT_THROW(mesh.coord_of(4), Error);
  EXPECT_THROW(mesh.coord_of(-1), Error);
  EXPECT_THROW(mesh.node_at(2, 0), Error);
}

TEST(Mesh2DTest, RouteIsEmptyForSelf) {
  Mesh2D mesh(3, 3);
  EXPECT_TRUE(mesh.route(4, 4).empty());
}

TEST(Mesh2DTest, XyRoutingGoesRowFirst) {
  Mesh2D mesh(3, 4);
  // From (0,0) to (2,2): along row 0 to column 2, then down column 2.
  const auto links = mesh.route(mesh.node_at(0, 0), mesh.node_at(2, 2));
  ASSERT_EQ(links.size(), 4u);
  EXPECT_EQ(links[0], (Link{mesh.node_at(0, 0), mesh.node_at(0, 1)}));
  EXPECT_EQ(links[1], (Link{mesh.node_at(0, 1), mesh.node_at(0, 2)}));
  EXPECT_EQ(links[2], (Link{mesh.node_at(0, 2), mesh.node_at(1, 2)}));
  EXPECT_EQ(links[3], (Link{mesh.node_at(1, 2), mesh.node_at(2, 2)}));
}

TEST(Mesh2DTest, RouteLengthEqualsManhattanDistance) {
  Mesh2D mesh(5, 7);
  for (int s = 0; s < mesh.node_count(); s += 3) {
    for (int d = 0; d < mesh.node_count(); d += 5) {
      EXPECT_EQ(static_cast<int>(mesh.route(s, d).size()), mesh.distance(s, d));
    }
  }
}

TEST(Mesh2DTest, ReverseRoutesUseDistinctChannels) {
  // Bidirectional links are two directed channels; opposite routes must not
  // share link indices.
  Mesh2D mesh(1, 8);
  const auto right = mesh.route(0, 7);
  const auto left = mesh.route(7, 0);
  std::set<int> right_ids;
  std::set<int> left_ids;
  for (const auto& l : right) right_ids.insert(mesh.link_index(l));
  for (const auto& l : left) left_ids.insert(mesh.link_index(l));
  for (int id : right_ids) EXPECT_EQ(left_ids.count(id), 0u);
}

TEST(Mesh2DTest, LinkIndicesAreDenseAndUnique) {
  Mesh2D mesh(4, 6);
  std::set<int> seen;
  for (int node = 0; node < mesh.node_count(); ++node) {
    Coord c = mesh.coord_of(node);
    if (c.col + 1 < mesh.cols()) {
      seen.insert(mesh.link_index(Link{node, mesh.node_at(c.row, c.col + 1)}));
      seen.insert(mesh.link_index(Link{mesh.node_at(c.row, c.col + 1), node}));
    }
    if (c.row + 1 < mesh.rows()) {
      seen.insert(mesh.link_index(Link{node, mesh.node_at(c.row + 1, c.col)}));
      seen.insert(mesh.link_index(Link{mesh.node_at(c.row + 1, c.col), node}));
    }
  }
  EXPECT_EQ(static_cast<int>(seen.size()), mesh.directed_link_count());
  EXPECT_EQ(*seen.begin(), 0);
  EXPECT_EQ(*seen.rbegin(), mesh.directed_link_count() - 1);
}

TEST(Mesh2DTest, LinkIndexRejectsNonAdjacent) {
  Mesh2D mesh(3, 3);
  EXPECT_THROW(mesh.link_index(Link{0, 2}), Error);
  EXPECT_THROW(mesh.link_index(Link{0, 4}), Error);
}

TEST(Mesh2DTest, LinearArrayAsOneByP) {
  // A 1 x p mesh models the linear-array setting of Sections 4-6.
  Mesh2D line(1, 30);
  EXPECT_EQ(line.node_count(), 30);
  EXPECT_EQ(line.directed_link_count(), 2 * 29);
  EXPECT_EQ(line.distance(0, 29), 29);
}

}  // namespace
}  // namespace intercom
