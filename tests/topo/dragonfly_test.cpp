// Dragonfly construction and minimal local-global-local routing.
#include "intercom/topo/dragonfly.hpp"

#include <gtest/gtest.h>

#include "intercom/util/error.hpp"

namespace intercom {
namespace {

TEST(DragonflyTest, BalancedShapeAndLabel) {
  // a=2, p=2, h=1: g = a*h + 1 = 3 groups, 12 hosts.
  Dragonfly d(2, 2, 1);
  EXPECT_EQ(d.groups(), 3);
  EXPECT_EQ(d.node_count(), 12);
  EXPECT_EQ(d.name(), "dragonfly");
  EXPECT_EQ(d.label(), "dragonfly2x2x1");
}

TEST(DragonflyTest, SameRouterPairIsUpDown) {
  Dragonfly d(2, 2, 1);
  // Hosts 0 and 1 hang off router 0 of group 0.
  const auto route = d.route(0, 1);
  ASSERT_EQ(route.size(), 2u);
  EXPECT_EQ(d.link_kind(route[0]), Dragonfly::LinkKind::kHostUp);
  EXPECT_EQ(d.link_kind(route[1]), Dragonfly::LinkKind::kHostDown);
}

TEST(DragonflyTest, SameGroupPairUsesOneLocalHop) {
  Dragonfly d(2, 2, 1);
  // Host 0 (router 0) to host 2 (router 1), both group 0.
  const auto route = d.route(0, 2);
  ASSERT_EQ(route.size(), 3u);
  EXPECT_EQ(d.link_kind(route[0]), Dragonfly::LinkKind::kHostUp);
  EXPECT_EQ(d.link_kind(route[1]), Dragonfly::LinkKind::kLocal);
  EXPECT_EQ(d.link_kind(route[2]), Dragonfly::LinkKind::kHostDown);
  EXPECT_EQ(d.min_hops(0, 2), 3);
}

TEST(DragonflyTest, CrossGroupRouteUsesExactlyOneGlobalHop) {
  Dragonfly d(2, 2, 2);  // g = 5 groups, 20 hosts
  const int n = d.node_count();
  for (int src = 0; src < n; ++src) {
    for (int dst = 0; dst < n; ++dst) {
      if (src == dst) continue;
      int globals = 0;
      for (int link : d.route(src, dst)) {
        if (d.link_kind(link) == Dragonfly::LinkKind::kGlobal) ++globals;
      }
      const bool cross_group = src / (2 * 2) != dst / (2 * 2);
      EXPECT_EQ(globals, cross_group ? 1 : 0)
          << "src=" << src << " dst=" << dst;
    }
  }
}

TEST(DragonflyTest, MinimalRouteIsAtMostFiveHops) {
  Dragonfly d(3, 2, 2);  // g = 7 groups, 42 hosts
  const int n = d.node_count();
  for (int src = 0; src < n; ++src) {
    for (int dst = 0; dst < n; ++dst) {
      if (src == dst) continue;
      EXPECT_LE(d.route(src, dst).size(), 5u);
    }
  }
}

TEST(DragonflyTest, EveryGroupPairHasAGlobalChannel) {
  // Balanced consecutive assignment: any cross-group pair routes with one
  // global hop, so the route exists and is minimal for every pair.
  Dragonfly d(2, 1, 1);  // 3 groups, 6 hosts
  const int n = d.node_count();
  for (int src = 0; src < n; ++src) {
    for (int dst = 0; dst < n; ++dst) {
      EXPECT_EQ(d.route(src, dst).size(),
                static_cast<std::size_t>(d.min_hops(src, dst)));
    }
  }
}

TEST(DragonflyTest, SelfRouteIsEmpty) {
  Dragonfly d(2, 2, 1);
  EXPECT_TRUE(d.route(5, 5).empty());
  EXPECT_EQ(d.min_hops(5, 5), 0);
}

TEST(DragonflyTest, RejectsOutOfDomainShapes) {
  EXPECT_THROW(Dragonfly(0, 1, 1), ConfigError);
  EXPECT_THROW(Dragonfly(1, 0, 1), ConfigError);
  EXPECT_THROW(Dragonfly(1, 1, 0), ConfigError);
  EXPECT_THROW(Dragonfly(1024, 1024, 1024), ConfigError);  // host-count cap
}

}  // namespace
}  // namespace intercom
